//! A minimal ordered JSON document builder and parser, shared by every
//! tool in the workspace that speaks JSON.
//!
//! The workspace builds offline, so it carries its own serializer instead
//! of depending on `serde_json`. Object keys keep their insertion order,
//! which makes exported `BENCH_*.json` files diffable across runs and
//! thread counts, and makes the `grserve` daemon's responses byte-stable
//! for content-addressed caching. The companion [`Json::parse`] reads the
//! same documents back — the benchmark regression gate uses it to load the
//! committed `BENCH_baseline.json`, and the serving layer uses it to
//! decode request bodies.
//!
//! Historically this lived at `grbench::json`; that path remains as a
//! re-export for existing callers.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (printed without a decimal point).
    UInt(u64),
    /// A finite double (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts `key` into an object, replacing an existing entry in place.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(entries) = self else { panic!("Json::set on a non-object") };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
        self
    }

    /// The entry for `key`, when `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when `self` is a number ([`Json::UInt`] included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string value, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The key/value entries, when `self` is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Parses a JSON document. Object keys keep document order; integers
    /// without a fraction or exponent parse as [`Json::UInt`], every other
    /// number as [`Json::Num`].
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message for malformed input (including
    /// trailing non-whitespace after the document).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// final line, matching `serde_json::to_string_pretty` conventions.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                entries.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        // Surrogate pairs are not needed for the harness's
                        // ASCII-named documents; reject them explicitly.
                        let c = char::from_u32(code).ok_or("surrogate \\u escape unsupported")?;
                        out.push(c);
                    }
                    other => return Err(format!("unknown escape `\\{}`", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (keys and values may hold any
                // unescaped non-ASCII text).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(u64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string_pretty(), "null");
        assert_eq!(Json::Bool(true).to_string_pretty(), "true");
        assert_eq!(Json::UInt(42).to_string_pretty(), "42");
        assert_eq!(Json::Num(0.5).to_string_pretty(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\n").to_string_pretty(), r#""a\"b\\c\n""#);
        assert_eq!(Json::from("\u{1}").to_string_pretty(), "\"\\u0001\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut o = Json::obj();
        o.set("z", 1u64).set("a", 2u64).set("z", 3u64);
        assert_eq!(o.to_string_pretty(), "{\n  \"z\": 3,\n  \"a\": 2\n}");
    }

    #[test]
    fn nesting_indents() {
        let mut inner = Json::obj();
        inner.set("k", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]));
        let mut o = Json::obj();
        o.set("outer", inner);
        let expected = "{\n  \"outer\": {\n    \"k\": [\n      1,\n      2\n    ]\n  }\n}";
        assert_eq!(o.to_string_pretty(), expected);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).to_string_pretty(), "[]");
        assert_eq!(Json::obj().to_string_pretty(), "{}");
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let mut inner = Json::obj();
        inner.set("rate", 1.25).set("count", 42u64).set("ok", true);
        let mut doc = Json::obj();
        doc.set("name", "NRU \"quoted\"\n")
            .set("policies", Json::Arr(vec![inner, Json::Null]))
            .set("empty", Json::Arr(vec![]));
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integral_floats_reparse_as_uint() {
        // `Num(2.0)` prints as `2` (the serializer has no trailing `.0`),
        // so it comes back as `UInt(2)` — numerically equal via `as_f64`.
        let text = Json::Num(2.0).to_string_pretty();
        assert_eq!(text, "2");
        assert_eq!(Json::parse(&text).unwrap(), Json::UInt(2));
    }

    #[test]
    fn parse_distinguishes_uint_from_float() {
        let doc = Json::parse(r#"{"a": 7, "b": 7.0, "c": -7, "d": 1e3}"#).unwrap();
        assert_eq!(doc.get("a"), Some(&Json::UInt(7)));
        assert_eq!(doc.get("b"), Some(&Json::Num(7.0)));
        assert_eq!(doc.get("c"), Some(&Json::Num(-7.0)));
        assert_eq!(doc.get("d"), Some(&Json::Num(1000.0)));
    }

    #[test]
    fn parse_keeps_document_key_order() {
        let doc = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = doc.entries().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn parse_decodes_escapes() {
        let doc = Json::parse(r#""tab\t quote\" uA""#).unwrap();
        assert_eq!(doc.as_str(), Some("tab\t quote\" uA"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\": 1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors_reject_wrong_shapes() {
        assert_eq!(Json::Null.get("k"), None);
        assert_eq!(Json::Str("x".into()).as_f64(), None);
        assert_eq!(Json::UInt(3).as_f64(), Some(3.0));
        assert_eq!(Json::UInt(3).as_str(), None);
        assert_eq!(Json::Arr(vec![]).entries(), None);
    }
}
