//! Round-trip tests for the shared JSON codec: everything the builder can
//! emit must parse back to an equal value, because the serving layer keys
//! its content-addressed result cache on the serialized bytes.

use grjson::Json;

fn roundtrip(doc: &Json) -> Json {
    let text = doc.to_string_pretty();
    let back = Json::parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
    // Serialization must be a fixed point: parse(print(x)) prints the same
    // bytes again, the property the result cache relies on.
    assert_eq!(back.to_string_pretty(), text, "serialization is not a fixed point");
    back
}

#[test]
fn deeply_nested_objects_round_trip() {
    let mut leaf = Json::obj();
    leaf.set("hits", 41u64).set("misses", 7u64).set("rate", 41.0 / 48.0);
    let mut per_app = Json::obj();
    per_app.set("BioShock", leaf.clone()).set("HAWX", leaf);
    let mut per_policy = Json::obj();
    per_policy.set("GSPC+UCD", per_app.clone()).set("DRRIP", per_app);
    let mut doc = Json::obj();
    doc.set("policies", per_policy)
        .set("apps", Json::Arr(vec![Json::from("BioShock"), Json::from("HAWX")]))
        .set("empty_obj", Json::obj())
        .set("empty_arr", Json::Arr(vec![]));
    assert_eq!(roundtrip(&doc), doc);
}

#[test]
fn arrays_of_mixed_scalars_round_trip() {
    let doc = Json::Arr(vec![
        Json::Null,
        Json::Bool(false),
        Json::Bool(true),
        Json::UInt(0),
        Json::UInt(u64::MAX),
        Json::Num(-1.5),
        Json::Num(1e-9),
        Json::from("plain"),
        Json::Arr(vec![Json::Arr(vec![Json::UInt(1)])]),
    ]);
    assert_eq!(roundtrip(&doc), doc);
}

#[test]
fn escape_heavy_strings_round_trip() {
    for s in [
        "quote \" backslash \\ slash /",
        "newline\ntab\tcarriage\r",
        "control \u{1} \u{1f} bell \u{7}",
        "unicode: naïve — ‘curly’ 🎮",
        "",
        "ends with backslash \\",
    ] {
        let mut doc = Json::obj();
        doc.set(s, Json::from(s));
        let back = roundtrip(&doc);
        assert_eq!(back.get(s).and_then(Json::as_str), Some(s), "string {s:?} mangled");
    }
}

#[test]
fn numbers_keep_integer_float_distinction() {
    // u64 values survive exactly (no f64 rounding through the parser).
    for n in [0u64, 1, 2_u64.pow(53) + 1, u64::MAX] {
        let back = roundtrip(&Json::UInt(n));
        assert_eq!(back, Json::UInt(n), "u64 {n} lost precision");
    }
    // Fractional floats stay floats and stay exact (shortest-repr `{x}`
    // formatting is read back by the same std float parser).
    for x in [0.5, -0.25, 1.0 / 3.0, 6.02e23, 5e-324] {
        let back = roundtrip(&Json::Num(x));
        assert_eq!(back.as_f64(), Some(x), "float {x} drifted");
    }
}

#[test]
fn large_document_round_trips() {
    // A document shaped like a real job payload: 24 policies × 12 apps.
    let mut doc = Json::obj();
    for p in 0..24u64 {
        let mut apps = Json::obj();
        for a in 0..12u64 {
            let mut entry = Json::obj();
            // Rates stay strictly fractional: integral floats print as
            // integers and intentionally reparse as `UInt` (covered by the
            // unit tests), which would break value-level equality here.
            entry.set("misses", p * 1000 + a).set("rate", (a as f64 + 1.0) / 24.0);
            apps.set(format!("app{a}"), entry);
        }
        doc.set(format!("policy{p}"), apps);
    }
    assert_eq!(roundtrip(&doc), doc);
}
