//! Phase-cost breakdown of the replay core, for tuning on a given host.
//!
//! ```text
//! cargo run --release -p grcache --example replay_profile
//! ```
//!
//! Times successively larger slices of the per-access work over the same
//! synthetic trace — address mapping alone, mapping plus the packed-mirror
//! probe, then the full retire loop under every available probe kernel —
//! so the difference between consecutive lines is the cost of the added
//! phase. The synthetic trace mixes a hot working set with streaming
//! conflict traffic, roughly the hit rate of a real frame.

use std::hint::black_box;
use std::time::Instant;

use grcache::{AccessInfo, Block, FillInfo, Llc, LlcConfig, Policy, ProbeKind};
use grtrace::{Access, StreamId, Trace};

/// NRU with the paper's single reference bit — representative of the
/// cheap end of the registry.
struct Nru;

impl Policy for Nru {
    fn name(&self) -> &str {
        "NRU"
    }
    fn state_bits_per_block(&self) -> u32 {
        1
    }
    fn on_hit(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) {
        set[way].meta = 1;
        if set.iter().all(|b| !b.valid || b.meta == 1) {
            for b in set.iter_mut() {
                b.meta = 0;
            }
            set[way].meta = 1;
        }
    }
    fn choose_victim(&mut self, _a: &AccessInfo, set: &mut [Block]) -> usize {
        set.iter().position(|b| b.meta == 0).unwrap_or(0)
    }
    fn on_fill(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        set[way].meta = 1;
        FillInfo::default()
    }
}

/// Callback-free policy: isolates the simulator body's own cost.
struct Nop;

impl Policy for Nop {
    fn name(&self) -> &str {
        "NOP"
    }
    fn state_bits_per_block(&self) -> u32 {
        0
    }
    fn on_hit(&mut self, _a: &AccessInfo, _set: &mut [Block], _way: usize) {}
    fn choose_victim(&mut self, _a: &AccessInfo, _set: &mut [Block]) -> usize {
        0
    }
    fn on_fill(&mut self, _a: &AccessInfo, _set: &mut [Block], _way: usize) -> FillInfo {
        FillInfo::default()
    }
}

fn synthetic_trace(len: usize) -> Trace {
    let mut out = Trace::new("synthetic", 0);
    let mut x = 0x9e3779b97f4a7c15u64;
    for i in 0..len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // ~80% of accesses revisit a 4096-block hot set; the rest stream.
        let block = if x % 10 < 8 { x % 4096 } else { 0x10_0000 + i as u64 };
        let stream = if x.is_multiple_of(4) { StreamId::RenderTarget } else { StreamId::Texture };
        let mut a = Access::load(block * 64, stream);
        a.write = x.is_multiple_of(8);
        out.push(a);
    }
    out
}

fn time_loop(label: &str, accesses: usize, mut f: impl FnMut() -> u64) {
    // Warmup, then best of three passes.
    f();
    let mut best = f64::MAX;
    for _ in 0..3 {
        let started = Instant::now();
        black_box(f());
        best = best.min(started.elapsed().as_secs_f64());
    }
    let rate = accesses as f64 / best;
    println!("{label:<28} {rate:>12.0} acc/s   {:>6.1} cyc/acc @2.1GHz", 2.1e9 / rate);
}

fn main() {
    let cfg = LlcConfig { size_bytes: 128 * 1024, ways: 16, banks: 4, sample_period: 64 };
    let geo = cfg.geometry();
    let trace = synthetic_trace(2_000_000);
    let n = trace.len();

    time_loop("map (fold+coords)", n, || {
        let mut acc = 0u64;
        for a in trace.iter() {
            let (bank, set, tag) = geo.map(a.block());
            acc = acc.wrapping_add(bank as u64 ^ set as u64 ^ tag);
        }
        acc
    });

    // A free-standing mirror with the same footprint as the real one: the
    // probe loop's loads and compares cost the same whether or not the
    // tags came from real fills.
    let tags: Vec<u64> =
        (0..cfg.total_blocks()).map(|i| (i as u64).wrapping_mul(0x9e37) % 4096).collect();
    time_loop("map+probe (warm mirror)", n, || {
        let mut acc = 0u64;
        for a in trace.iter() {
            let (bank, set, tag) = geo.map(a.block());
            let base = geo.set_base(bank, set);
            let mut eq = 0u64;
            for (i, &t) in tags[base..base + 16].iter().enumerate() {
                eq |= u64::from(t == tag) << i;
            }
            acc = acc.wrapping_add(eq);
        }
        acc
    });

    // Steady-state hit cost: 1024 blocks (half capacity) fit entirely, so
    // after the warmup pass inside time_loop every access hits.
    let mut hit_trace = Trace::new("hits", 0);
    let mut x = 1234567u64;
    for _ in 0..2_000_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        hit_trace.push(Access::load((x % 1024) * 64, StreamId::Texture));
    }
    let mut warm = Llc::new(cfg, Nru);
    warm.run_trace(&hit_trace, None);
    for kind in ProbeKind::all_available() {
        let label = format!("hit-only slice [{kind:?}]");
        let mut llc = Llc::new(cfg, Nru);
        llc.set_probe_kind(kind);
        llc.run_trace(&hit_trace, None);
        time_loop(&label, n, || {
            llc.run_trace(&hit_trace, None);
            llc.stats().total_hits()
        });
        let label = format!("hit-only nop-policy [{kind:?}]");
        let mut llc = Llc::new(cfg, Nop);
        llc.set_probe_kind(kind);
        llc.run_trace(&hit_trace, None);
        time_loop(&label, n, || {
            llc.run_trace(&hit_trace, None);
            llc.stats().total_hits()
        });
    }

    for kind in ProbeKind::all_available() {
        let label = format!("access loop [{kind:?}]");
        time_loop(&label, n, || {
            let mut llc = Llc::new(cfg, Nru);
            llc.set_probe_kind(kind);
            let mut hits = 0u64;
            for a in trace.iter() {
                if matches!(llc.access(a), grcache::AccessResult::Hit) {
                    hits += 1;
                }
            }
            hits
        });
        let label = format!("slice replay [{kind:?}]");
        time_loop(&label, n, || {
            let mut llc = Llc::new(cfg, Nru);
            llc.set_probe_kind(kind);
            llc.run_trace(&trace, None);
            llc.stats().total_hits()
        });
        let label = format!("slice nop-policy [{kind:?}]");
        time_loop(&label, n, || {
            let mut llc = Llc::new(cfg, Nop);
            llc.set_probe_kind(kind);
            llc.run_trace(&trace, None);
            llc.stats().total_hits()
        });
    }
}
