//! The GPU's internal render caches.
//!
//! The GPU traditionally includes a small independent on-die cache for each
//! access stream: vertex and vertex-index caches, HiZ cache, Z cache,
//! stencil cache, render-target (color) cache, and a multi-level texture
//! cache hierarchy. Their *misses* (plus dirty writebacks) constitute the
//! streams seen by the LLC. This module reproduces the configuration of the
//! paper's Section 4:
//!
//! | cache        | size   | ways |
//! |--------------|--------|------|
//! | vertex index | 1 KB   | 16   |
//! | vertex       | 16 KB  | 128  |
//! | HiZ          | 12 KB  | 24   |
//! | stencil      | 16 KB  | 16   |
//! | render target| 24 KB  | 24   |
//! | Z            | 32 KB  | 32   |
//! | texture L3   | 384 KB | 48   |
//!
//! The paper leaves the first two texture levels unspecified; we model a
//! 16 KB 8-way L1 and a 64 KB 16-way L2 (typical of contemporaneous GPUs),
//! configurable via [`TextureHierarchyConfig`]. Displayable color and the
//! "other" stream (shader code, constants) are lightly cached through a
//! small buffer.

use grtrace::{Access, StreamId, Trace};

use crate::{CacheConfig, Lookup, LruCache};

/// Texture cache hierarchy geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextureHierarchyConfig {
    /// First-level texture cache.
    pub l1: CacheConfig,
    /// Second-level texture cache.
    pub l2: CacheConfig,
    /// Third-level texture cache (384 KB 48-way in the paper).
    pub l3: CacheConfig,
}

impl Default for TextureHierarchyConfig {
    fn default() -> Self {
        TextureHierarchyConfig {
            l1: CacheConfig::kb(16, 8),
            l2: CacheConfig::kb(64, 16),
            l3: CacheConfig::kb(384, 48),
        }
    }
}

/// The full render-cache hierarchy standing between the pipeline and the LLC.
///
/// Feed raw pipeline accesses through [`RenderCaches::filter`]; the accesses
/// that miss (and the dirty writebacks they displace) are appended to the
/// output [`Trace`] and form the LLC access stream.
///
/// # Example
///
/// ```
/// use grcache::RenderCaches;
/// use grtrace::{Access, StreamId, Trace};
///
/// let mut rc = RenderCaches::new();
/// let mut llc_trace = Trace::new("demo", 0);
/// rc.filter(Access::load(0x100, StreamId::Texture), &mut llc_trace);
/// rc.filter(Access::load(0x100, StreamId::Texture), &mut llc_trace); // L1 hit
/// assert_eq!(llc_trace.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RenderCaches {
    vertex: LruCache,
    vertex_index: LruCache,
    hiz: LruCache,
    z: LruCache,
    stencil: LruCache,
    rt: LruCache,
    other: LruCache,
    tex_l1: LruCache,
    tex_l2: LruCache,
    tex_l3: LruCache,
    tex_prefetch: bool,
    prefetches: u64,
}

impl RenderCaches {
    /// Creates the hierarchy with the paper's geometry and default texture
    /// L1/L2 sizes.
    pub fn new() -> Self {
        Self::with_texture_hierarchy(TextureHierarchyConfig::default())
    }

    /// Creates the hierarchy with a custom texture cache configuration.
    pub fn with_texture_hierarchy(tex: TextureHierarchyConfig) -> Self {
        RenderCaches {
            vertex: LruCache::new(CacheConfig::kb(16, 128)),
            vertex_index: LruCache::new(CacheConfig::kb(1, 16)),
            hiz: LruCache::new(CacheConfig::kb(12, 24)),
            z: LruCache::new(CacheConfig::kb(32, 32)),
            stencil: LruCache::new(CacheConfig::kb(16, 16)),
            rt: LruCache::new(CacheConfig::kb(24, 24)),
            other: LruCache::new(CacheConfig::kb(8, 8)),
            tex_l1: LruCache::new(tex.l1),
            tex_l2: LruCache::new(tex.l2),
            tex_l3: LruCache::new(tex.l3),
            tex_prefetch: false,
            prefetches: 0,
        }
    }

    /// Enables next-block prefetching into the texture L3 on its misses
    /// (texture caches have long used FIFO prefetch structures; see the
    /// paper's related work). The prefetched block's fill also reaches the
    /// LLC trace, tagged as texture traffic.
    pub fn with_texture_prefetch(mut self) -> Self {
        self.tex_prefetch = true;
        self
    }

    /// Texture blocks prefetched so far.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Routes one raw pipeline access through its render cache; misses and
    /// dirty writebacks are appended to `llc_trace` as LLC accesses.
    ///
    /// Displayable color is not cached internally (it is produced once and
    /// handed to the display engine), so every display access reaches the
    /// LLC directly.
    pub fn filter(&mut self, access: Access, llc_trace: &mut Trace) {
        let stream = access.stream;
        match stream {
            StreamId::Display => {
                llc_trace.push(access);
            }
            StreamId::Texture => {
                // Read-only three-level hierarchy; a miss cascades downward
                // and only an L3 miss reaches the LLC.
                let block = access.block();
                if self.tex_l1.access(block, false) == Lookup::Hit {
                    return;
                }
                if self.tex_l2.access(block, false) == Lookup::Hit {
                    return;
                }
                if self.tex_l3.access(block, false) == Lookup::Hit {
                    return;
                }
                llc_trace.push(access);
                // Sequential next-block prefetch into the L3.
                if self.tex_prefetch && self.tex_l3.access(block + 1, false) != Lookup::Hit {
                    self.prefetches += 1;
                    llc_trace.push(Access::load((block + 1) * 64, StreamId::Texture));
                }
            }
            _ => {
                let cache = self.cache_for(stream);
                match cache.access(access.block(), access.write) {
                    Lookup::Hit => {}
                    Lookup::Miss { writeback } => {
                        llc_trace.push(access);
                        if let Some(wb_block) = writeback {
                            llc_trace.push(Access::store(wb_block * 64, stream));
                        }
                    }
                }
            }
        }
    }

    fn cache_for(&mut self, stream: StreamId) -> &mut LruCache {
        match stream {
            StreamId::Vertex => &mut self.vertex,
            StreamId::VertexIndex => &mut self.vertex_index,
            StreamId::HiZ => &mut self.hiz,
            StreamId::Z => &mut self.z,
            StreamId::Stencil => &mut self.stencil,
            StreamId::RenderTarget => &mut self.rt,
            StreamId::Other => &mut self.other,
            StreamId::Texture | StreamId::Display => {
                unreachable!("texture and display are routed separately")
            }
        }
    }

    /// Flushes all dirty render-cache blocks into `llc_trace` as stores.
    /// Call at end-of-frame so pending color/depth data reaches the LLC.
    pub fn flush(&mut self, llc_trace: &mut Trace) {
        for (stream, cache) in [
            (StreamId::HiZ, &mut self.hiz),
            (StreamId::Z, &mut self.z),
            (StreamId::Stencil, &mut self.stencil),
            (StreamId::RenderTarget, &mut self.rt),
            (StreamId::Other, &mut self.other),
        ] {
            for block in cache.flush_dirty() {
                llc_trace.push(Access::store(block * 64, stream));
            }
        }
    }

    /// Total hits across all render caches (for reporting).
    pub fn total_hits(&self) -> u64 {
        [
            &self.vertex,
            &self.vertex_index,
            &self.hiz,
            &self.z,
            &self.stencil,
            &self.rt,
            &self.other,
            &self.tex_l1,
            &self.tex_l2,
            &self.tex_l3,
        ]
        .iter()
        .map(|c| c.hits())
        .sum()
    }
}

impl Default for RenderCaches {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn texture_hit_filters_llc_traffic() {
        let mut rc = RenderCaches::new();
        let mut out = Trace::new("t", 0);
        for _ in 0..10 {
            rc.filter(Access::load(0x40, StreamId::Texture), &mut out);
        }
        assert_eq!(out.len(), 1, "only the first access misses to the LLC");
    }

    #[test]
    fn display_is_never_cached_internally() {
        let mut rc = RenderCaches::new();
        let mut out = Trace::new("t", 0);
        for _ in 0..5 {
            rc.filter(Access::store(0x1000, StreamId::Display), &mut out);
        }
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn dirty_rt_eviction_emits_store_to_llc() {
        let mut rc = RenderCaches::new();
        let mut out = Trace::new("t", 0);
        // The RT cache is 24 KB / 24-way / 16 sets. Fill one set with
        // dirty blocks until it overflows: blocks k*16 all map to set 0.
        for k in 0..25u64 {
            rc.filter(Access::store(k * 16 * 64, StreamId::RenderTarget), &mut out);
        }
        let wb = out.iter().filter(|a| a.write && a.stream == StreamId::RenderTarget).count();
        // 25 store misses + at least 1 dirty writeback.
        assert!(wb > 25, "expected stores plus writebacks, got {wb}");
    }

    #[test]
    fn flush_drains_dirty_blocks() {
        let mut rc = RenderCaches::new();
        let mut out = Trace::new("t", 0);
        rc.filter(Access::store(0, StreamId::Z), &mut out);
        let before = out.len();
        rc.flush(&mut out);
        assert_eq!(out.len(), before + 1);
        assert!(out.accesses()[before].write);
        assert_eq!(out.accesses()[before].stream, StreamId::Z);
    }

    #[test]
    fn streams_use_independent_caches() {
        let mut rc = RenderCaches::new();
        let mut out = Trace::new("t", 0);
        rc.filter(Access::load(0, StreamId::Z), &mut out);
        // Same address from a different stream still misses (separate caches).
        rc.filter(Access::load(0, StreamId::Stencil), &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn texture_prefetch_fetches_next_block() {
        let mut rc = RenderCaches::new().with_texture_prefetch();
        let mut out = Trace::new("t", 0);
        rc.filter(Access::load(0x40, StreamId::Texture), &mut out);
        // The demand miss and its prefetch both reach the LLC.
        assert_eq!(out.len(), 2);
        assert_eq!(out.accesses()[1].block(), out.accesses()[0].block() + 1);
        assert_eq!(rc.prefetches(), 1);
        // The prefetched block now hits in the L3: no LLC traffic.
        rc.filter(Access::load(0x80, StreamId::Texture), &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn prefetch_disabled_by_default() {
        let mut rc = RenderCaches::new();
        let mut out = Trace::new("t", 0);
        rc.filter(Access::load(0x40, StreamId::Texture), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(rc.prefetches(), 0);
    }

    #[test]
    fn texture_levels_cascade() {
        let cfg = TextureHierarchyConfig {
            l1: CacheConfig { size_bytes: 2 * 64, ways: 2 },
            l2: CacheConfig { size_bytes: 4 * 64, ways: 4 },
            l3: CacheConfig { size_bytes: 8 * 64, ways: 8 },
        };
        let mut rc = RenderCaches::with_texture_hierarchy(cfg);
        let mut out = Trace::new("t", 0);
        // Touch 4 distinct blocks: all miss L1 (2 blocks) but block 0 and 1
        // survive in L2/L3.
        for b in 0..4u64 {
            rc.filter(Access::load(b * 64, StreamId::Texture), &mut out);
        }
        assert_eq!(out.len(), 4);
        // Block 0 was evicted from tiny L1 but lives in L2: no LLC traffic.
        rc.filter(Access::load(0, StreamId::Texture), &mut out);
        assert_eq!(out.len(), 4);
    }
}
