//! Offline next-use annotation enabling Belady's optimal policy.

use std::collections::HashMap;

use grtrace::Access;

/// For each access, computes the trace position of the *next* access to the
/// same cache block, or `u64::MAX` if the block is never touched again.
///
/// Belady's optimal replacement victimizes the resident block whose next use
/// lies farthest in the future; feeding these annotations to the LLC via
/// [`crate::Llc::run_trace`] lets the `Belady` policy in the `gspc` crate
/// make that decision online.
///
/// # Example
///
/// ```
/// use grcache::annotate_next_use;
/// use grtrace::{Access, StreamId};
///
/// let trace = vec![
///     Access::load(0, StreamId::Z),   // next use at index 2
///     Access::load(64, StreamId::Z),  // never again
///     Access::load(0, StreamId::Z),   // never again
/// ];
/// assert_eq!(annotate_next_use(&trace), vec![2, u64::MAX, u64::MAX]);
/// ```
pub fn annotate_next_use(accesses: &[Access]) -> Vec<u64> {
    let mut next = vec![u64::MAX; accesses.len()];
    let mut last_seen: HashMap<u64, u64> = HashMap::new();
    for (i, a) in accesses.iter().enumerate().rev() {
        let block = a.block();
        if let Some(&later) = last_seen.get(&block) {
            next[i] = later;
        }
        last_seen.insert(block, i as u64);
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtrace::StreamId;

    fn la(addr: u64) -> Access {
        Access::load(addr, StreamId::Texture)
    }

    #[test]
    fn empty_trace() {
        assert!(annotate_next_use(&[]).is_empty());
    }

    #[test]
    fn repeated_block_chains_forward() {
        let t = vec![la(0), la(0), la(0)];
        assert_eq!(annotate_next_use(&t), vec![1, 2, u64::MAX]);
    }

    #[test]
    fn different_offsets_same_block() {
        // 0 and 63 share block 0.
        let t = vec![la(0), la(63)];
        assert_eq!(annotate_next_use(&t), vec![1, u64::MAX]);
    }

    #[test]
    fn interleaved_blocks() {
        let t = vec![la(0), la(64), la(0), la(64)];
        assert_eq!(annotate_next_use(&t), vec![2, 3, u64::MAX, u64::MAX]);
    }

    #[test]
    fn annotations_point_to_same_block() {
        let t: Vec<Access> = (0..200).map(|i| la(((i * 37) % 11) * 64)).collect();
        let nu = annotate_next_use(&t);
        for (i, &n) in nu.iter().enumerate() {
            if n != u64::MAX {
                assert!(n > i as u64);
                assert_eq!(t[n as usize].block(), t[i].block());
                // No access to the same block strictly between i and n.
                for j in i + 1..n as usize {
                    assert_ne!(t[j].block(), t[i].block());
                }
            }
        }
    }
}
