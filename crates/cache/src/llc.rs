//! The banked, non-inclusive/non-exclusive LLC simulator.
//!
//! This is the offline LLC model of the paper: it digests the LLC load/store
//! access trace produced by the render-cache hierarchy and executes a
//! pluggable replacement [`Policy`]. A miss always fills the requested block
//! (unless the policy bypasses the access, as with uncached displayable
//! color); an eviction never invalidates the internal render caches.
//!
//! The simulator sits in the middle of the streaming pipeline: it pulls
//! from any [`AccessSource`] ([`Llc::run_source`]) — a materialized trace,
//! a chunked disk reader, or the renderer emitting band by band — and
//! pushes events into one composable [`LlcObserver`] chosen at
//! construction. The default [`NullObserver`] instantiation carries zero
//! per-access instrumentation branches.

use std::io;

use grtrace::{Access, AccessSource, Chunk, Trace};

use crate::{
    AccessInfo, Block, CharTracker, LlcConfig, LlcGeometry, LlcObserver, LlcStats, MemoryLog,
    NullObserver, Policy, SetSnapshot,
};

/// Outcome of one LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The block was resident.
    Hit,
    /// The block was filled; `dirty_eviction` is `true` when a dirty block
    /// was displaced to memory.
    Miss {
        /// Whether the fill displaced a dirty block.
        dirty_eviction: bool,
    },
    /// The access went around the LLC (straight to memory).
    Bypass,
}

/// A banked last-level cache executing a replacement policy `P`.
///
/// # Data layout
///
/// The probe — the only work every access pays — runs over a packed probe
/// mirror: one `u64` tag word per way (`tags`) plus one validity bitmask
/// `u64` per set (`valid`). A 16-way set's tag words span two cache
/// lines, against the six lines of [`Block`] structs an
/// array-of-structs probe walks, and the compare is branchless: every
/// way's equality bit is OR-folded into a match mask, which vectorizes
/// and never mispredicts. Free-way selection on the miss path is a
/// single bit-scan of the inverted validity mask. The authoritative
/// per-way state stays in one flat [`Block`] array, so the policy
/// callbacks receive the stable `&mut [Block]` set slice with no
/// per-access marshalling — the adapter is the mirror itself, which the
/// simulator rewrites only on fills (the sole event that changes a way's
/// tag or validity).
///
/// # Example
///
/// ```
/// use grcache::{Llc, LlcConfig, AccessInfo, Block, FillInfo, Policy};
/// use grtrace::{Access, StreamId};
///
/// /// Evict way 0 always — a deliberately bad policy for the example.
/// struct Way0;
/// impl Policy for Way0 {
///     fn name(&self) -> &str { "WAY0" }
///     fn state_bits_per_block(&self) -> u32 { 0 }
///     fn on_hit(&mut self, _: &AccessInfo, _: &mut [Block], _: usize) {}
///     fn choose_victim(&mut self, _: &AccessInfo, _: &mut [Block]) -> usize { 0 }
///     fn on_fill(&mut self, _: &AccessInfo, _: &mut [Block], _: usize) -> FillInfo {
///         FillInfo::default()
///     }
/// }
///
/// let mut llc = Llc::new(LlcConfig::mb(8), Way0);
/// llc.access(&Access::load(0, StreamId::Texture));
/// llc.access(&Access::load(0, StreamId::Texture));
/// assert_eq!(llc.stats().total_hits(), 1);
/// ```
#[derive(Debug)]
pub struct Llc<P, O = NullObserver> {
    cfg: LlcConfig,
    /// Precomputed mapping constants — keeps the division in
    /// [`LlcConfig::sets_per_bank`] out of the per-access path.
    geo: LlcGeometry,
    policy: P,
    observer: O,
    /// Per-way tag words, probed before anything else is touched. A
    /// probe mirror of `blocks`, rewritten on fills only.
    tags: Vec<u64>,
    /// One validity bitmask per set (bit `w` = way `w` holds a block).
    valid: Vec<u64>,
    /// Authoritative per-way state — the policy-facing view.
    blocks: Vec<Block>,
    stats: LlcStats,
    seq: u64,
}

impl<P: Policy> Llc<P, NullObserver> {
    /// Creates an empty LLC running `policy` with no instrumentation — the
    /// zero-overhead configuration every plain miss sweep uses.
    pub fn new(cfg: LlcConfig, policy: P) -> Self {
        Llc::with_observer(cfg, policy, NullObserver)
    }

    /// Enables the characterization tracker (Figures 6, 7, 9 bookkeeping).
    pub fn with_characterization(self) -> Llc<P, CharTracker> {
        let chars = CharTracker::new(&self.cfg);
        self.replace_observer(chars)
    }

    /// Records every DRAM-bound transfer (miss fills and writebacks) so a
    /// memory timing model can replay them.
    pub fn with_memory_log(self) -> Llc<P, MemoryLog> {
        self.replace_observer(MemoryLog::new())
    }
}

impl<P: Policy, O: LlcObserver> Llc<P, O> {
    /// Creates an empty LLC running `policy` with `observer` attached as
    /// the event sink. Compose observers with tuples and `Option`s, e.g.
    /// `(Option<CharTracker>, Option<MemoryLog>)` for runtime-selected
    /// instrumentation.
    ///
    /// # Panics
    ///
    /// Panics if the configured associativity exceeds 64 ways (the per-set
    /// validity bitmask is a single `u64` word).
    pub fn with_observer(cfg: LlcConfig, policy: P, observer: O) -> Self {
        assert!(cfg.ways <= 64, "set bitmasks support at most 64 ways");
        Llc {
            cfg,
            geo: cfg.geometry(),
            policy,
            observer,
            tags: vec![0; cfg.total_blocks()],
            valid: vec![0; cfg.total_sets()],
            blocks: vec![Block::default(); cfg.total_blocks()],
            stats: LlcStats::new(),
            seq: 0,
        }
    }

    /// Swaps the observer type before any access has been serviced.
    fn replace_observer<O2: LlcObserver>(self, observer: O2) -> Llc<P, O2> {
        debug_assert_eq!(self.seq, 0, "observers must be attached before the first access");
        Llc {
            cfg: self.cfg,
            geo: self.geo,
            policy: self.policy,
            observer,
            tags: self.tags,
            valid: self.valid,
            blocks: self.blocks,
            stats: self.stats,
            seq: self.seq,
        }
    }

    /// The recorded DRAM-bound transfers, if an attached observer keeps
    /// them (see [`MemoryLog`]): `(block, is_write)` in issue order.
    pub fn memory_log(&self) -> Option<&[(u64, bool)]> {
        self.observer.memory_log()
    }

    /// The LLC geometry.
    pub fn config(&self) -> LlcConfig {
        self.cfg
    }

    /// The policy, for inspection.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The attached observer, for inspection.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Characterization report, if an attached observer builds one (see
    /// [`CharTracker`]).
    pub fn characterization(&self) -> Option<&crate::CharReport> {
        self.observer.char_report()
    }

    /// Services one access with no next-use annotation.
    pub fn access(&mut self, access: &Access) -> AccessResult {
        self.access_annotated(access, u64::MAX)
    }

    /// Services one access carrying the trace position of the *next* access
    /// to the same block (`u64::MAX` if never; only Belady's policy uses it).
    pub fn access_annotated(&mut self, access: &Access, next_use: u64) -> AccessResult {
        // The paper's LLC is 16-way in every configuration; routing the
        // dominant associativity through a const-generic body gives the
        // probe and fill paths compile-time trip counts (full unroll, no
        // bounds checks). The branch is on a loop-invariant field, so the
        // predictor never misses it.
        if self.cfg.ways == 16 {
            self.access_ways::<16>(access, next_use)
        } else {
            self.access_ways::<0>(access, next_use)
        }
    }

    /// The access body, specialized per associativity: `WAYS` is the
    /// compile-time way count, or 0 for the generic any-associativity
    /// instantiation.
    #[inline]
    fn access_ways<const WAYS: usize>(&mut self, access: &Access, next_use: u64) -> AccessResult {
        let block = access.block();
        let (bank, set, tag) = self.geo.map(block);
        let info = AccessInfo {
            seq: self.seq,
            block,
            bank,
            set_in_bank: set,
            stream: access.stream,
            class: access.stream.policy_class(),
            write: access.write,
            is_sample: self.cfg.is_sample_set(set),
            next_use,
        };
        self.seq += 1;

        let ways = if WAYS > 0 { WAYS } else { self.cfg.ways };
        let set_idx = self.geo.set_index(bank, set);
        let base = set_idx * ways;

        // Packed probe: the tag-match needs only the tag words, so the
        // scan touches 8 bytes per way (two cache lines for a 16-way
        // set). The compare is branchless — every way's equality bit is
        // OR-folded into a match mask, which vectorizes and never
        // mispredicts — and ANDing with the validity mask discards
        // never-written tag words.
        let vmask = self.valid[set_idx];
        let hit_mask = {
            let tags = &self.tags[base..base + ways];
            let mut eq = 0u64;
            for (i, &t) in tags.iter().enumerate() {
                eq |= u64::from(t == tag) << i;
            }
            eq & vmask
        };

        if hit_mask != 0 {
            let way = hit_mask.trailing_zeros() as usize;
            self.stats.record_hit(info.stream);
            let set_blocks = &mut self.blocks[base..base + ways];
            set_blocks[way].dirty |= info.write;
            set_blocks[way].next_use = next_use;
            self.observer.observe_hit(&info, way);
            self.policy.on_hit(&info, set_blocks, way);
            if O::WANTS_SET_STATE {
                self.observer.observe_set_state(
                    &info,
                    SetSnapshot {
                        tags: &self.tags[base..base + ways],
                        valid_mask: self.valid[set_idx],
                        blocks: &self.blocks[base..base + ways],
                        touched_way: way,
                        hit: true,
                    },
                );
            }
            return AccessResult::Hit;
        }

        self.stats.record_miss(info.stream);

        if self.policy.should_bypass(&info) {
            if info.write {
                self.stats.bypassed_writes += 1;
            } else {
                self.stats.bypassed_reads += 1;
            }
            self.observer.observe_bypass(&info);
            return AccessResult::Bypass;
        }

        // Fill the first free way (one bit-scan of the inverted validity
        // mask), else ask the policy for a victim.
        let free = (!vmask).trailing_zeros() as usize;
        let set_blocks = &mut self.blocks[base..base + ways];
        let mut dirty_eviction = false;
        let way = if free < ways {
            free
        } else {
            let victim = self.policy.choose_victim(&info, set_blocks);
            debug_assert!(victim < ways, "victim out of range");
            self.policy.on_evict(&info, set_blocks, victim);
            self.stats.evictions += 1;
            dirty_eviction = set_blocks[victim].dirty;
            if dirty_eviction {
                self.stats.writebacks += 1;
            }
            // A writeback goes to the *victim's* address, rebuilt from
            // its tag and the shared (bank, set); the rebuild is only
            // paid when the attached observer declares it needs it.
            let victim_block = if O::NEEDS_VICTIM_ADDR {
                self.geo.unmap(bank, set, self.tags[base + victim])
            } else {
                0
            };
            self.observer.observe_evict(&info, victim, victim_block, dirty_eviction);
            victim
        };

        // Install the block, let the policy initialize its state, then
        // refresh the probe mirror — a fill is the only event that changes
        // a way's tag or validity.
        set_blocks[way] = Block { valid: true, dirty: info.write, meta: 0, next_use };
        let fill = self.policy.on_fill(&info, set_blocks, way);
        self.tags[base + way] = tag;
        self.valid[set_idx] |= 1 << way;
        self.stats.record_fill(info.class, fill.distant);
        self.observer.observe_fill(&info, way);
        if O::WANTS_SET_STATE {
            self.observer.observe_set_state(
                &info,
                SetSnapshot {
                    tags: &self.tags[base..base + ways],
                    valid_mask: self.valid[set_idx],
                    blocks: &self.blocks[base..base + ways],
                    touched_way: way,
                    hit: false,
                },
            );
        }
        AccessResult::Miss { dirty_eviction }
    }

    /// Flips one bit of the probe-mirror tag word currently holding
    /// `block`, returning `true` if the block was resident. **Test-only
    /// fault injection**: this desynchronizes the packed mirror from the
    /// authoritative [`Block`] array exactly the way a buggy fill-path
    /// refactor would, so the differential harness can prove it detects
    /// and shrinks such bugs. Never call it outside a checking harness.
    #[doc(hidden)]
    pub fn corrupt_mirror_tag_for_test(&mut self, block: u64) -> bool {
        let (bank, set, tag) = self.geo.map(block);
        let set_idx = self.geo.set_index(bank, set);
        let base = set_idx * self.cfg.ways;
        let vmask = self.valid[set_idx];
        for way in 0..self.cfg.ways {
            if vmask >> way & 1 == 1 && self.tags[base + way] == tag {
                self.tags[base + way] ^= 1;
                return true;
            }
        }
        false
    }

    /// Replays a whole trace. When `next_uses` is provided it must have one
    /// entry per access (see [`crate::annotate_next_use`]).
    ///
    /// # Panics
    ///
    /// Panics if `next_uses` is provided with a length different from the
    /// trace.
    pub fn run_trace(&mut self, trace: &Trace, next_uses: Option<&[u64]>) {
        if let Some(nu) = next_uses {
            assert_eq!(nu.len(), trace.len(), "annotation length mismatch");
            for (a, &n) in trace.iter().zip(nu) {
                self.access_annotated(a, n);
            }
        } else {
            for a in trace.iter() {
                self.access(a);
            }
        }
    }

    /// Drains an [`AccessSource`] through the LLC, chunk by chunk, and
    /// returns the number of accesses serviced. The per-access loop is the
    /// same slice iteration as [`Llc::run_trace`], so streamed and
    /// materialized replays are bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from disk-backed sources; in-memory and
    /// synthesized sources never fail.
    pub fn run_source<S: AccessSource>(&mut self, source: &mut S) -> io::Result<u64> {
        let mut serviced = 0u64;
        while source.advance()? {
            let Chunk { accesses, next_uses } = source.chunk();
            serviced += accesses.len() as u64;
            match next_uses {
                Some(nu) => {
                    debug_assert_eq!(nu.len(), accesses.len(), "annotation length mismatch");
                    for (a, &next) in accesses.iter().zip(nu) {
                        self.access_annotated(a, next);
                    }
                }
                None => {
                    for a in accesses {
                        self.access(a);
                    }
                }
            }
        }
        Ok(serviced)
    }

    /// Consumes the LLC, returning `(stats, policy)`.
    pub fn into_parts(self) -> (LlcStats, P) {
        (self.stats, self.policy)
    }

    /// Consumes the LLC, returning the attached observer.
    pub fn into_observer(self) -> O {
        self.observer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FillInfo;
    use grtrace::StreamId;

    /// LRU-by-sequence policy for testing the simulator plumbing.
    struct TestLru {
        tick: u32,
    }

    impl Policy for TestLru {
        fn name(&self) -> &str {
            "TEST-LRU"
        }
        fn state_bits_per_block(&self) -> u32 {
            32
        }
        fn on_hit(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) {
            set[way].meta = self.tick;
            self.tick += 1;
        }
        fn choose_victim(&mut self, _a: &AccessInfo, set: &mut [Block]) -> usize {
            set.iter().enumerate().min_by_key(|(_, b)| b.meta).map(|(i, _)| i).unwrap()
        }
        fn on_fill(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
            set[way].meta = self.tick;
            self.tick += 1;
            FillInfo::rrip(2, 3)
        }
    }

    fn small_llc() -> Llc<TestLru> {
        // 4 banks x 2 sets x 2 ways = 16 blocks = 1 KB.
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        Llc::new(cfg, TestLru { tick: 0 })
    }

    /// Block addresses that land in bank 0, set 0 of `small_llc`.
    fn conflicting_blocks(n: u64) -> Vec<u64> {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        (0..10_000u64)
            .filter(|&b| {
                let (bank, set, _) = cfg.map(b);
                (bank, set) == (0, 0)
            })
            .take(n as usize)
            .collect()
    }

    #[test]
    fn fill_then_hit() {
        let mut llc = small_llc();
        let a = Access::load(0, StreamId::Texture);
        assert!(matches!(llc.access(&a), AccessResult::Miss { .. }));
        assert_eq!(llc.access(&a), AccessResult::Hit);
        assert_eq!(llc.stats().hits(StreamId::Texture), 1);
        assert_eq!(llc.stats().misses(StreamId::Texture), 1);
    }

    #[test]
    fn capacity_eviction_uses_policy() {
        let mut llc = small_llc();
        for b in conflicting_blocks(3) {
            llc.access(&Access::load(b * 64, StreamId::Z));
        }
        // Block 0 was LRU and must be gone; block 8 and 16 resident.
        assert!(matches!(llc.access(&Access::load(0, StreamId::Z)), AccessResult::Miss { .. }));
        assert_eq!(llc.stats().evictions, 2); // block 0 evicted, then block 8
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut llc = small_llc();
        let blocks = conflicting_blocks(3);
        llc.access(&Access::store(blocks[0] * 64, StreamId::RenderTarget));
        llc.access(&Access::load(blocks[1] * 64, StreamId::RenderTarget));
        match llc.access(&Access::load(blocks[2] * 64, StreamId::RenderTarget)) {
            AccessResult::Miss { dirty_eviction } => assert!(dirty_eviction),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn writeback_logs_victim_address() {
        let mut llc = small_llc().with_memory_log();
        let blocks = conflicting_blocks(3);
        // Dirty the first two blocks (filling both ways of the set), then
        // force an eviction with a third conflicting load.
        llc.access(&Access::store(blocks[0] * 64, StreamId::RenderTarget));
        llc.access(&Access::store(blocks[1] * 64, StreamId::RenderTarget));
        llc.access(&Access::load(blocks[2] * 64, StreamId::RenderTarget));
        let writebacks: Vec<u64> =
            llc.memory_log().unwrap().iter().filter(|(_, write)| *write).map(|(b, _)| *b).collect();
        // TestLru evicts blocks[0]; the logged writeback must carry the
        // victim's own address, not the incoming block's.
        assert_eq!(writebacks, vec![blocks[0]]);
        assert_ne!(blocks[0], blocks[2]);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut llc = small_llc();
        let blocks = conflicting_blocks(3);
        llc.access(&Access::load(blocks[0] * 64, StreamId::Z));
        llc.access(&Access::store(blocks[0] * 64, StreamId::Z)); // hit, dirties
        llc.access(&Access::load(blocks[1] * 64, StreamId::Z));
        llc.access(&Access::load(blocks[2] * 64, StreamId::Z)); // evicts block 0
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn characterization_hooks_fire() {
        let mut llc = small_llc().with_characterization();
        llc.access(&Access::store(0, StreamId::RenderTarget));
        llc.access(&Access::load(0, StreamId::Texture));
        let report = llc.characterization().unwrap();
        assert_eq!(report.rt_produced, 1);
        assert_eq!(report.rt_consumed, 1);
    }

    #[test]
    fn run_trace_matches_manual_replay() {
        let mut t = Trace::new("t", 0);
        for i in 0..100u64 {
            t.push(Access::load((i % 7) * 64, StreamId::Texture));
        }
        let mut a = small_llc();
        a.run_trace(&t, None);
        let mut b = small_llc();
        for acc in t.iter() {
            b.access(acc);
        }
        assert_eq!(a.stats().total_hits(), b.stats().total_hits());
        assert_eq!(a.stats().total_misses(), b.stats().total_misses());
    }

    #[test]
    #[should_panic(expected = "annotation length mismatch")]
    fn run_trace_rejects_bad_annotations() {
        let mut t = Trace::new("t", 0);
        t.push(Access::load(0, StreamId::Z));
        small_llc().run_trace(&t, Some(&[]));
    }

    #[test]
    fn sample_set_flag_follows_config() {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        assert!(cfg.is_sample_set(0));
        assert!(!cfg.is_sample_set(1));
    }

    #[test]
    fn run_source_matches_run_trace() {
        let mut t = Trace::new("t", 0);
        for i in 0..500u64 {
            t.push(Access::load((i % 23) * 64, StreamId::Texture));
        }
        let mut a = small_llc();
        a.run_trace(&t, None);
        let mut b = small_llc();
        let n = b.run_source(&mut t.source()).unwrap();
        assert_eq!(n, 500);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn run_source_carries_annotations() {
        let mut t = Trace::new("t", 0);
        for i in 0..100u64 {
            t.push(Access::load((i % 5) * 64, StreamId::Z));
        }
        let nu = crate::annotate_next_use(t.accesses());
        let mut a = small_llc();
        a.run_trace(&t, Some(&nu));
        let mut b = small_llc();
        b.run_source(&mut t.source_annotated(&nu)).unwrap();
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn streamed_memory_log_is_bit_identical() {
        let mut t = Trace::new("t", 0);
        for i in 0..300u64 {
            let addr = ((i * 7) % 40) * 64;
            t.push(if i % 3 == 0 {
                Access::store(addr, StreamId::RenderTarget)
            } else {
                Access::load(addr, StreamId::Texture)
            });
        }
        let mut a = small_llc().with_memory_log();
        a.run_trace(&t, None);
        let mut b = small_llc().with_memory_log();
        b.run_source(&mut t.source()).unwrap();
        assert_eq!(a.memory_log(), b.memory_log());
        assert!(!a.memory_log().unwrap().is_empty());
    }

    #[test]
    fn invariant_observer_passes_clean_replay() {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        let obs = crate::InvariantObserver::new(&cfg, 32);
        let mut llc = Llc::with_observer(cfg, TestLru { tick: 0 }, obs);
        for i in 0..500u64 {
            let addr = ((i * 13) % 40) * 64;
            if i % 4 == 0 {
                llc.access(&Access::store(addr, StreamId::RenderTarget));
            } else {
                llc.access(&Access::load(addr, StreamId::Texture));
            }
        }
        assert_eq!(llc.observer().checked(), 500);
    }

    /// A policy whose metadata overruns its declared one-bit budget.
    struct MetaHog;
    impl Policy for MetaHog {
        fn name(&self) -> &str {
            "META-HOG"
        }
        fn state_bits_per_block(&self) -> u32 {
            1
        }
        fn on_hit(&mut self, _a: &AccessInfo, _s: &mut [Block], _w: usize) {}
        fn choose_victim(&mut self, _a: &AccessInfo, _s: &mut [Block]) -> usize {
            0
        }
        fn on_fill(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
            set[way].meta = 5; // needs 3 bits, declared 1
            FillInfo::default()
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the declared")]
    fn invariant_observer_catches_meta_overrun() {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        let obs = crate::InvariantObserver::new(&cfg, 1);
        let mut llc = Llc::with_observer(cfg, MetaHog, obs);
        llc.access(&Access::load(0, StreamId::Texture));
    }

    #[test]
    fn mirror_fault_injector_flips_resident_tag_only() {
        let mut llc = small_llc();
        llc.access(&Access::load(0, StreamId::Texture));
        assert!(!llc.corrupt_mirror_tag_for_test(999_999));
        assert!(llc.corrupt_mirror_tag_for_test(0));
        // The mirror no longer matches block 0: the re-access misses.
        assert!(matches!(
            llc.access(&Access::load(0, StreamId::Texture)),
            AccessResult::Miss { .. }
        ));
    }

    #[test]
    fn composed_observer_collects_both_sinks() {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        let obs = (CharTracker::new(&cfg), MemoryLog::new());
        let mut llc = Llc::with_observer(cfg, TestLru { tick: 0 }, obs);
        llc.access(&Access::store(0, StreamId::RenderTarget));
        llc.access(&Access::load(0, StreamId::Texture));
        assert_eq!(llc.characterization().unwrap().rt_consumed, 1);
        assert_eq!(llc.memory_log().unwrap().len(), 1); // the fill
    }
}
