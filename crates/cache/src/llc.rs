//! The banked, non-inclusive/non-exclusive LLC simulator.
//!
//! This is the offline LLC model of the paper: it digests the LLC load/store
//! access trace produced by the render-cache hierarchy and executes a
//! pluggable replacement [`Policy`]. A miss always fills the requested block
//! (unless the policy bypasses the access, as with uncached displayable
//! color); an eviction never invalidates the internal render caches.
//!
//! The simulator sits in the middle of the streaming pipeline: it pulls
//! from any [`AccessSource`] ([`Llc::run_source`]) — a materialized trace,
//! a chunked disk reader, or the renderer emitting band by band — and
//! pushes events into one composable [`LlcObserver`] chosen at
//! construction. The default [`NullObserver`] instantiation carries zero
//! per-access instrumentation branches.
//!
//! # The batched replay core
//!
//! Slice replays ([`Llc::run_trace`] / [`Llc::run_source`]) retire
//! accesses through a three-phase batch driver: a *map* phase computes
//! every slot's `(bank, set, tag)` coordinates and prefetches its mirror
//! words, a *probe* phase lane-compares the whole batch against the packed
//! mirror ([`crate::probe`]), and a *retire* phase consumes the slots
//! strictly in arrival order. Because the probe reads only the tag words
//! and validity mask, and a *fill* is the only event that writes them, the
//! up-front probes are exact unless an earlier access in the same batch
//! filled the same set — the retire phase tracks in-batch fills and
//! re-probes exactly those collided slots against the live mirror. The
//! result is bit-identical to the sequential loop for every policy and
//! observer: same stats, same memory-log order, same characterization.
//! `GR_SIMD=0` (or [`Llc::set_probe_kind`] with [`ProbeKind::Scalar`])
//! selects the original unbatched per-access loop at runtime.

use std::io;

use grtrace::{Access, AccessSource, Chunk, Trace};

use crate::probe::{self, probe_batch, Slot};
use crate::{
    AccessInfo, Block, CharTracker, LlcConfig, LlcGeometry, LlcObserver, LlcStats, MemoryLog,
    NullObserver, Policy, ProbeKind, SetSnapshot,
};

/// Accesses retired per batch of the vectorized replay driver. Sixteen
/// slots keep the whole batch state in registers/L1 while giving the
/// probe sweep enough independent lanes to hide the mirror-load latency.
const BATCH: usize = 16;

/// Outcome of one LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The block was resident.
    Hit,
    /// The block was filled; `dirty_eviction` is `true` when a dirty block
    /// was displaced to memory.
    Miss {
        /// Whether the fill displaced a dirty block.
        dirty_eviction: bool,
    },
    /// The access went around the LLC (straight to memory).
    Bypass,
}

/// A banked last-level cache executing a replacement policy `P`.
///
/// # Data layout
///
/// The probe — the only work every access pays — runs over a packed probe
/// mirror: one `u64` tag word per way (`tags`) plus one validity bitmask
/// `u64` per set (`valid`). A 16-way set's tag words span two cache
/// lines, against the six lines of [`Block`] structs an
/// array-of-structs probe walks, and the compare is branchless: every
/// way's equality bit is OR-folded into a match mask, which vectorizes
/// and never mispredicts. Free-way selection on the miss path is a
/// single bit-scan of the inverted validity mask. The authoritative
/// per-way state stays in one flat [`Block`] array, so the policy
/// callbacks receive the stable `&mut [Block]` set slice with no
/// per-access marshalling — the adapter is the mirror itself, which the
/// simulator rewrites only on fills (the sole event that changes a way's
/// tag or validity).
///
/// # Example
///
/// ```
/// use grcache::{Llc, LlcConfig, AccessInfo, Block, FillInfo, Policy};
/// use grtrace::{Access, StreamId};
///
/// /// Evict way 0 always — a deliberately bad policy for the example.
/// struct Way0;
/// impl Policy for Way0 {
///     fn name(&self) -> &str { "WAY0" }
///     fn state_bits_per_block(&self) -> u32 { 0 }
///     fn on_hit(&mut self, _: &AccessInfo, _: &mut [Block], _: usize) {}
///     fn choose_victim(&mut self, _: &AccessInfo, _: &mut [Block]) -> usize { 0 }
///     fn on_fill(&mut self, _: &AccessInfo, _: &mut [Block], _: usize) -> FillInfo {
///         FillInfo::default()
///     }
/// }
///
/// let mut llc = Llc::new(LlcConfig::mb(8), Way0);
/// llc.access(&Access::load(0, StreamId::Texture));
/// llc.access(&Access::load(0, StreamId::Texture));
/// assert_eq!(llc.stats().total_hits(), 1);
/// ```
#[derive(Debug)]
pub struct Llc<P, O = NullObserver> {
    cfg: LlcConfig,
    /// Precomputed mapping constants — keeps the division in
    /// [`LlcConfig::sets_per_bank`] out of the per-access path.
    geo: LlcGeometry,
    policy: P,
    observer: O,
    /// Per-way tag words, probed before anything else is touched. A
    /// probe mirror of `blocks`, rewritten on fills only.
    tags: Vec<u64>,
    /// One validity bitmask per set (bit `w` = way `w` holds a block).
    valid: Vec<u64>,
    /// Authoritative per-way state — the policy-facing view.
    blocks: Vec<Block>,
    stats: LlcStats,
    seq: u64,
    /// Which tag-compare implementation services the probe, and whether
    /// slice replays run the batched driver (`GR_SIMD`-selectable).
    probe_kind: ProbeKind,
}

impl<P: Policy> Llc<P, NullObserver> {
    /// Creates an empty LLC running `policy` with no instrumentation — the
    /// zero-overhead configuration every plain miss sweep uses.
    pub fn new(cfg: LlcConfig, policy: P) -> Self {
        Llc::with_observer(cfg, policy, NullObserver)
    }

    /// Enables the characterization tracker (Figures 6, 7, 9 bookkeeping).
    pub fn with_characterization(self) -> Llc<P, CharTracker> {
        let chars = CharTracker::new(&self.cfg);
        self.replace_observer(chars)
    }

    /// Records every DRAM-bound transfer (miss fills and writebacks) so a
    /// memory timing model can replay them.
    pub fn with_memory_log(self) -> Llc<P, MemoryLog> {
        self.replace_observer(MemoryLog::new())
    }
}

impl<P: Policy, O: LlcObserver> Llc<P, O> {
    /// Creates an empty LLC running `policy` with `observer` attached as
    /// the event sink. Compose observers with tuples and `Option`s, e.g.
    /// `(Option<CharTracker>, Option<MemoryLog>)` for runtime-selected
    /// instrumentation.
    ///
    /// # Panics
    ///
    /// Panics if the configured associativity exceeds 64 ways (the per-set
    /// validity bitmask is a single `u64` word).
    pub fn with_observer(cfg: LlcConfig, policy: P, observer: O) -> Self {
        assert!(cfg.ways <= 64, "set bitmasks support at most 64 ways");
        Llc {
            cfg,
            geo: cfg.geometry(),
            policy,
            observer,
            tags: vec![0; cfg.total_blocks()],
            valid: vec![0; cfg.total_sets()],
            blocks: vec![Block::default(); cfg.total_blocks()],
            stats: LlcStats::new(),
            seq: 0,
            probe_kind: ProbeKind::from_env(),
        }
    }

    /// Swaps the observer type before any access has been serviced.
    fn replace_observer<O2: LlcObserver>(self, observer: O2) -> Llc<P, O2> {
        debug_assert_eq!(self.seq, 0, "observers must be attached before the first access");
        Llc {
            cfg: self.cfg,
            geo: self.geo,
            policy: self.policy,
            observer,
            tags: self.tags,
            valid: self.valid,
            blocks: self.blocks,
            stats: self.stats,
            seq: self.seq,
            probe_kind: self.probe_kind,
        }
    }

    /// The probe implementation servicing this instance.
    pub fn probe_kind(&self) -> ProbeKind {
        self.probe_kind
    }

    /// Selects the probe implementation — and, with [`ProbeKind::Scalar`],
    /// the original unbatched replay loop — overriding the process-wide
    /// `GR_SIMD` default. Lets differential harnesses A/B the scalar and
    /// vector paths inside one process.
    ///
    /// # Panics
    ///
    /// Panics if any access has already been serviced, or if `kind` is not
    /// available on this host (e.g. [`ProbeKind::Avx2`] without AVX2).
    pub fn set_probe_kind(&mut self, kind: ProbeKind) {
        assert_eq!(self.seq, 0, "probe kind must be selected before the first access");
        assert!(kind.is_available(), "probe kind {kind:?} is unavailable on this host");
        self.probe_kind = kind;
    }

    /// The recorded DRAM-bound transfers, if an attached observer keeps
    /// them (see [`MemoryLog`]): `(block, is_write)` in issue order.
    pub fn memory_log(&self) -> Option<&[(u64, bool)]> {
        self.observer.memory_log()
    }

    /// The LLC geometry.
    pub fn config(&self) -> LlcConfig {
        self.cfg
    }

    /// The policy, for inspection.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The attached observer, for inspection.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Characterization report, if an attached observer builds one (see
    /// [`CharTracker`]).
    pub fn characterization(&self) -> Option<&crate::CharReport> {
        self.observer.char_report()
    }

    /// Services one access with no next-use annotation.
    pub fn access(&mut self, access: &Access) -> AccessResult {
        self.access_annotated(access, u64::MAX)
    }

    /// Services one access carrying the trace position of the *next* access
    /// to the same block (`u64::MAX` if never; only Belady's policy uses it).
    pub fn access_annotated(&mut self, access: &Access, next_use: u64) -> AccessResult {
        // The paper's LLC is 16-way in every configuration; routing the
        // dominant associativity through a const-generic body gives the
        // probe and fill paths compile-time trip counts (full unroll, no
        // bounds checks). The branch is on a loop-invariant field, so the
        // predictor never misses it.
        if self.cfg.ways == 16 {
            self.access_ways::<16>(access, next_use)
        } else {
            self.access_ways::<0>(access, next_use)
        }
    }

    /// The unbatched access body, specialized per associativity: `WAYS` is
    /// the compile-time way count, or 0 for the generic any-associativity
    /// instantiation.
    ///
    /// This is the pre-vectorization replay core, kept verbatim as the
    /// single-access path and the `GR_SIMD=0` reference loop: one fused
    /// map-probe-retire chain with the OR-folded scalar compare. The
    /// batched driver ([`Llc::run_slice`]) runs the same logic split into
    /// [`Llc::map_access`] / [`crate::probe::probe_batch`] /
    /// [`Llc::retire`] phases; the grcheck invariant sweep and the crate's
    /// differential tests hold the two bit-identical.
    #[inline]
    fn access_ways<const WAYS: usize>(&mut self, access: &Access, next_use: u64) -> AccessResult {
        let block = access.block();
        let (bank, set, tag) = self.geo.map(block);
        let info = AccessInfo {
            seq: self.seq,
            block,
            bank,
            set_in_bank: set,
            stream: access.stream,
            class: access.stream.policy_class(),
            write: access.write,
            is_sample: self.cfg.is_sample_set(set),
            next_use,
        };
        self.seq += 1;

        let ways = if WAYS > 0 { WAYS } else { self.cfg.ways };
        let set_idx = self.geo.set_index(bank, set);
        let base = set_idx * ways;
        // SAFETY invariant for the unchecked indexing below: `map` masks
        // `set` into `[0, sets_per_bank)` and `bank` into `[0, banks)`, so
        // `set_idx < total_sets == valid.len()` and `base + ways <=
        // total_blocks == tags.len() == blocks.len()`. The bounds checks
        // this elides sit on the hottest path in the repository.
        debug_assert!(set_idx < self.valid.len());
        debug_assert!(base + ways <= self.tags.len());

        // Packed probe: the tag-match needs only the tag words, so the
        // scan touches 8 bytes per way (two cache lines for a 16-way
        // set). The compare is branchless — every way's equality bit is
        // OR-folded into a match mask, which vectorizes and never
        // mispredicts — and ANDing with the validity mask discards
        // never-written tag words.
        let vmask = unsafe { *self.valid.get_unchecked(set_idx) };
        let hit_mask = {
            let tags = unsafe { self.tags.get_unchecked(base..base + ways) };
            let mut eq = 0u64;
            for (i, &t) in tags.iter().enumerate() {
                eq |= u64::from(t == tag) << i;
            }
            eq & vmask
        };

        if hit_mask != 0 {
            let way = hit_mask.trailing_zeros() as usize;
            self.stats.record_hit(info.stream);
            let set_blocks = unsafe { self.blocks.get_unchecked_mut(base..base + ways) };
            // SAFETY: `hit_mask` only carries equality bits below `ways`,
            // so its lowest set bit indexes inside the set slice.
            let hit_block = unsafe { set_blocks.get_unchecked_mut(way) };
            hit_block.dirty |= info.write;
            hit_block.next_use = next_use;
            self.observer.observe_hit(&info, way);
            self.policy.on_hit(&info, set_blocks, way);
            if O::WANTS_SET_STATE {
                self.observer.observe_set_state(
                    &info,
                    SetSnapshot {
                        tags: &self.tags[base..base + ways],
                        valid_mask: self.valid[set_idx],
                        blocks: &self.blocks[base..base + ways],
                        touched_way: way,
                        hit: true,
                    },
                );
            }
            return AccessResult::Hit;
        }

        self.stats.record_miss(info.stream);

        if self.policy.should_bypass(&info) {
            if info.write {
                self.stats.bypassed_writes += 1;
            } else {
                self.stats.bypassed_reads += 1;
            }
            self.observer.observe_bypass(&info);
            return AccessResult::Bypass;
        }

        // Fill the first free way (one bit-scan of the inverted validity
        // mask), else ask the policy for a victim.
        let free = (!vmask).trailing_zeros() as usize;
        // SAFETY: `base + ways <= blocks.len()` (see above).
        let set_blocks = unsafe { self.blocks.get_unchecked_mut(base..base + ways) };
        let mut dirty_eviction = false;
        let way = if free < ways {
            free
        } else {
            let victim = self.policy.choose_victim(&info, set_blocks);
            assert!(victim < ways, "victim out of range");
            self.policy.on_evict(&info, set_blocks, victim);
            self.stats.evictions += 1;
            dirty_eviction = set_blocks[victim].dirty;
            if dirty_eviction {
                self.stats.writebacks += 1;
            }
            // A writeback goes to the *victim's* address, rebuilt from
            // its tag and the shared (bank, set); the rebuild is only
            // paid when the attached observer declares it needs it.
            let victim_block = if O::NEEDS_VICTIM_ADDR {
                self.geo.unmap(bank, set, self.tags[base + victim])
            } else {
                0
            };
            self.observer.observe_evict(&info, victim, victim_block, dirty_eviction);
            victim
        };

        // Install the block, let the policy initialize its state, then
        // refresh the probe mirror — a fill is the only event that changes
        // a way's tag or validity.
        set_blocks[way] = Block { valid: true, dirty: info.write, meta: 0, next_use };
        let fill = self.policy.on_fill(&info, set_blocks, way);
        // SAFETY: `way < ways`, so `base + way` is in bounds; `set_idx <
        // valid.len()` (see above). The victim arm is guarded by the
        // `victim < ways` assert.
        unsafe {
            *self.tags.get_unchecked_mut(base + way) = tag;
            *self.valid.get_unchecked_mut(set_idx) |= 1 << way;
        }
        self.stats.record_fill(info.class, fill.distant);
        self.observer.observe_fill(&info, way);
        if O::WANTS_SET_STATE {
            self.observer.observe_set_state(
                &info,
                SetSnapshot {
                    tags: &self.tags[base..base + ways],
                    valid_mask: self.valid[set_idx],
                    blocks: &self.blocks[base..base + ways],
                    touched_way: way,
                    hit: false,
                },
            );
        }
        AccessResult::Miss { dirty_eviction }
    }

    /// The map phase: decomposes one access into a probe [`Slot`]. Pure
    /// reads — the slot captures the validity mask as of now, which stays
    /// exact until a fill to the same set.
    #[inline(always)]
    fn map_access(&self, access: &Access, next_use: u64, ways: usize) -> Slot {
        let block = access.block();
        let (bank, set, tag) = self.geo.map(block);
        let set_idx = self.geo.set_index(bank, set);
        let base = set_idx * ways;
        Slot {
            block,
            tag,
            next_use,
            vmask: self.valid[set_idx],
            hit_mask: 0,
            bank: bank as u32,
            set_in_bank: set as u32,
            set_idx: set_idx as u32,
            base: base as u32,
            stream: access.stream,
            write: access.write,
        }
    }

    /// The retire phase: consumes one probed [`Slot`] — statistics, policy
    /// callbacks, observer events, and the fill's mirror rewrite, exactly
    /// as the sequential loop orders them. The slot's `hit_mask` and
    /// `vmask` must reflect the mirror as of this call (the batch driver
    /// re-probes slots whose set was filled earlier in the batch).
    #[inline(always)]
    fn retire<const WAYS: usize>(&mut self, slot: &Slot) -> AccessResult {
        let ways = if WAYS > 0 { WAYS } else { self.cfg.ways };
        let set_idx = slot.set_idx as usize;
        let base = slot.base as usize;
        let info = AccessInfo {
            seq: self.seq,
            block: slot.block,
            bank: slot.bank as usize,
            set_in_bank: slot.set_in_bank as usize,
            stream: slot.stream,
            class: slot.stream.policy_class(),
            write: slot.write,
            is_sample: self.cfg.is_sample_set(slot.set_in_bank as usize),
            next_use: slot.next_use,
        };
        self.seq += 1;
        let next_use = slot.next_use;
        let vmask = slot.vmask;
        let hit_mask = slot.hit_mask;

        if hit_mask != 0 {
            let way = hit_mask.trailing_zeros() as usize;
            self.stats.record_hit(info.stream);
            let set_blocks = &mut self.blocks[base..base + ways];
            set_blocks[way].dirty |= info.write;
            set_blocks[way].next_use = next_use;
            self.observer.observe_hit(&info, way);
            self.policy.on_hit(&info, set_blocks, way);
            if O::WANTS_SET_STATE {
                self.observer.observe_set_state(
                    &info,
                    SetSnapshot {
                        tags: &self.tags[base..base + ways],
                        valid_mask: self.valid[set_idx],
                        blocks: &self.blocks[base..base + ways],
                        touched_way: way,
                        hit: true,
                    },
                );
            }
            return AccessResult::Hit;
        }

        self.stats.record_miss(info.stream);

        if self.policy.should_bypass(&info) {
            if info.write {
                self.stats.bypassed_writes += 1;
            } else {
                self.stats.bypassed_reads += 1;
            }
            self.observer.observe_bypass(&info);
            return AccessResult::Bypass;
        }

        // Fill the first free way (one bit-scan of the inverted validity
        // mask), else ask the policy for a victim.
        let free = (!vmask).trailing_zeros() as usize;
        let set_blocks = &mut self.blocks[base..base + ways];
        let mut dirty_eviction = false;
        let way = if free < ways {
            free
        } else {
            let victim = self.policy.choose_victim(&info, set_blocks);
            debug_assert!(victim < ways, "victim out of range");
            self.policy.on_evict(&info, set_blocks, victim);
            self.stats.evictions += 1;
            dirty_eviction = set_blocks[victim].dirty;
            if dirty_eviction {
                self.stats.writebacks += 1;
            }
            // A writeback goes to the *victim's* address, rebuilt from
            // its tag and the shared (bank, set); the rebuild is only
            // paid when the attached observer declares it needs it.
            let victim_block = if O::NEEDS_VICTIM_ADDR {
                self.geo.unmap(info.bank, info.set_in_bank, self.tags[base + victim])
            } else {
                0
            };
            self.observer.observe_evict(&info, victim, victim_block, dirty_eviction);
            victim
        };

        // Install the block, let the policy initialize its state, then
        // refresh the probe mirror — a fill is the only event that changes
        // a way's tag or validity.
        set_blocks[way] = Block { valid: true, dirty: info.write, meta: 0, next_use };
        let fill = self.policy.on_fill(&info, set_blocks, way);
        self.tags[base + way] = slot.tag;
        self.valid[set_idx] |= 1 << way;
        self.stats.record_fill(info.class, fill.distant);
        self.observer.observe_fill(&info, way);
        if O::WANTS_SET_STATE {
            self.observer.observe_set_state(
                &info,
                SetSnapshot {
                    tags: &self.tags[base..base + ways],
                    valid_mask: self.valid[set_idx],
                    blocks: &self.blocks[base..base + ways],
                    touched_way: way,
                    hit: false,
                },
            );
        }
        AccessResult::Miss { dirty_eviction }
    }

    /// Flips one bit of the probe-mirror tag word currently holding
    /// `block`, returning `true` if the block was resident. **Test-only
    /// fault injection**: this desynchronizes the packed mirror from the
    /// authoritative [`Block`] array exactly the way a buggy fill-path
    /// refactor would, so the differential harness can prove it detects
    /// and shrinks such bugs. Never call it outside a checking harness.
    #[doc(hidden)]
    pub fn corrupt_mirror_tag_for_test(&mut self, block: u64) -> bool {
        let (bank, set, tag) = self.geo.map(block);
        let set_idx = self.geo.set_index(bank, set);
        let base = set_idx * self.cfg.ways;
        let vmask = self.valid[set_idx];
        for way in 0..self.cfg.ways {
            if vmask >> way & 1 == 1 && self.tags[base + way] == tag {
                self.tags[base + way] ^= 1;
                return true;
            }
        }
        false
    }

    /// Replays one access slice: the batched map-probe-retire driver when
    /// the probe kind is vectorized, the original per-access loop under
    /// [`ProbeKind::Scalar`]. Both retire in arrival order and are
    /// bit-identical (see the module docs for the argument).
    fn run_slice<const WAYS: usize>(&mut self, accesses: &[Access], next_uses: Option<&[u64]>) {
        if !self.probe_kind.is_batched() {
            // The pre-vectorization replay core, kept verbatim as the
            // GR_SIMD=0 reference path: one dependent chain per access.
            match next_uses {
                Some(nu) => {
                    for (a, &next) in accesses.iter().zip(nu) {
                        self.access_ways::<WAYS>(a, next);
                    }
                }
                None => {
                    for a in accesses {
                        self.access_ways::<WAYS>(a, u64::MAX);
                    }
                }
            }
            return;
        }

        let ways = if WAYS > 0 { WAYS } else { self.cfg.ways };
        let kind = self.probe_kind;
        let mut slots = [Slot::placeholder(); BATCH];
        let mut start = 0usize;
        while start < accesses.len() {
            let n = BATCH.min(accesses.len() - start);
            // Map phase: every slot's address math and mirror prefetch,
            // up front. The chains are independent, so the loads overlap
            // instead of serializing behind each retire.
            for (i, a) in accesses[start..start + n].iter().enumerate() {
                let next = next_uses.map_or(u64::MAX, |nu| nu[start + i]);
                let s = self.map_access(a, next, ways);
                // Pull the mirror and block words the probe and retire
                // phases will touch; the batch gives the lines time to
                // arrive before they are demanded.
                probe::prefetch_read(&self.tags[s.base as usize]);
                probe::prefetch_read(&self.blocks[s.base as usize]);
                slots[i] = s;
            }
            // Probe phase: one lane-compare sweep over the whole batch.
            probe_batch(kind, &self.tags, ways, &mut slots[..n]);
            // Retire phase, strictly in arrival order. Only a fill
            // rewrites a set's mirror words, so a slot's up-front probe
            // is exact unless an earlier access in this batch filled the
            // same set — those slots re-probe against the live mirror.
            // Collision tracking over-approximates with a one-word bloom
            // over the set index: a false positive only triggers a
            // redundant re-probe of the live mirror, which is always
            // exact, so results stay bit-identical while the retire loop
            // pays one bit test instead of a list scan per slot.
            let mut filled_bloom = 0u64;
            for s in &mut slots[..n] {
                if filled_bloom & (1u64 << (s.set_idx & 63)) != 0 {
                    let base = s.base as usize;
                    s.vmask = self.valid[s.set_idx as usize];
                    s.hit_mask =
                        probe::probe_set(kind, &self.tags[base..base + ways], s.tag) & s.vmask;
                }
                if matches!(self.retire::<WAYS>(s), AccessResult::Miss { .. }) {
                    filled_bloom |= 1u64 << (s.set_idx & 63);
                }
            }
            start += n;
        }
    }

    /// Routes a slice replay through the dominant-associativity
    /// const-generic body (see [`Llc::access_annotated`]).
    fn dispatch_slice(&mut self, accesses: &[Access], next_uses: Option<&[u64]>) {
        if self.cfg.ways == 16 {
            self.run_slice::<16>(accesses, next_uses)
        } else {
            self.run_slice::<0>(accesses, next_uses)
        }
    }

    /// Replays a whole trace. When `next_uses` is provided it must have one
    /// entry per access (see [`crate::annotate_next_use`]).
    ///
    /// # Panics
    ///
    /// Panics if `next_uses` is provided with a length different from the
    /// trace.
    pub fn run_trace(&mut self, trace: &Trace, next_uses: Option<&[u64]>) {
        if let Some(nu) = next_uses {
            assert_eq!(nu.len(), trace.len(), "annotation length mismatch");
        }
        self.dispatch_slice(trace.accesses(), next_uses);
    }

    /// Drains an [`AccessSource`] through the LLC, chunk by chunk, and
    /// returns the number of accesses serviced. Each chunk runs through
    /// the same slice driver as [`Llc::run_trace`], so streamed and
    /// materialized replays are bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from disk-backed sources; in-memory and
    /// synthesized sources never fail.
    pub fn run_source<S: AccessSource>(&mut self, source: &mut S) -> io::Result<u64> {
        let mut serviced = 0u64;
        while source.advance()? {
            let Chunk { accesses, next_uses } = source.chunk();
            serviced += accesses.len() as u64;
            if let Some(nu) = next_uses {
                debug_assert_eq!(nu.len(), accesses.len(), "annotation length mismatch");
            }
            self.dispatch_slice(accesses, next_uses);
        }
        Ok(serviced)
    }

    /// Consumes the LLC, returning `(stats, policy)`.
    pub fn into_parts(self) -> (LlcStats, P) {
        (self.stats, self.policy)
    }

    /// Consumes the LLC, returning the attached observer.
    pub fn into_observer(self) -> O {
        self.observer
    }
}

/// Replays the same access slice through several independent LLC cells,
/// interleaved in fixed windows, and returns the aggregate access count
/// (`accesses.len() × lanes.len()`).
///
/// Accesses to different *cells* are trivially independent — the
/// experiment runner already replays policy×app cells separately — so
/// interleaving K cells over the same trace windows hides each cell's
/// dependent-load latency behind the others' work while the shared window
/// of trace data stays hot in L1/L2. Every lane sees the full slice in
/// order, so each cell's stats, memory log, and characterization are
/// bit-identical to a solo replay of the same trace.
///
/// # Panics
///
/// Panics if `next_uses` is provided with a length different from
/// `accesses`.
pub fn replay_lanes<P: Policy, O: LlcObserver>(
    lanes: &mut [Llc<P, O>],
    accesses: &[Access],
    next_uses: Option<&[u64]>,
) -> u64 {
    // Windows of 64 batches: long enough to amortize the per-lane switch,
    // short enough that the window's accesses stay resident across lanes.
    const WINDOW: usize = 64 * BATCH;
    if let Some(nu) = next_uses {
        assert_eq!(nu.len(), accesses.len(), "annotation length mismatch");
    }
    let mut start = 0usize;
    while start < accesses.len() {
        let end = (start + WINDOW).min(accesses.len());
        for llc in lanes.iter_mut() {
            llc.dispatch_slice(&accesses[start..end], next_uses.map(|nu| &nu[start..end]));
        }
        start = end;
    }
    accesses.len() as u64 * lanes.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FillInfo;
    use grtrace::StreamId;

    /// LRU-by-sequence policy for testing the simulator plumbing.
    struct TestLru {
        tick: u32,
    }

    impl Policy for TestLru {
        fn name(&self) -> &str {
            "TEST-LRU"
        }
        fn state_bits_per_block(&self) -> u32 {
            32
        }
        fn on_hit(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) {
            set[way].meta = self.tick;
            self.tick += 1;
        }
        fn choose_victim(&mut self, _a: &AccessInfo, set: &mut [Block]) -> usize {
            set.iter().enumerate().min_by_key(|(_, b)| b.meta).map(|(i, _)| i).unwrap()
        }
        fn on_fill(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
            set[way].meta = self.tick;
            self.tick += 1;
            FillInfo::rrip(2, 3)
        }
    }

    fn small_llc() -> Llc<TestLru> {
        // 4 banks x 2 sets x 2 ways = 16 blocks = 1 KB.
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        Llc::new(cfg, TestLru { tick: 0 })
    }

    /// Block addresses that land in bank 0, set 0 of `small_llc`.
    fn conflicting_blocks(n: u64) -> Vec<u64> {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        (0..10_000u64)
            .filter(|&b| {
                let (bank, set, _) = cfg.map(b);
                (bank, set) == (0, 0)
            })
            .take(n as usize)
            .collect()
    }

    #[test]
    fn fill_then_hit() {
        let mut llc = small_llc();
        let a = Access::load(0, StreamId::Texture);
        assert!(matches!(llc.access(&a), AccessResult::Miss { .. }));
        assert_eq!(llc.access(&a), AccessResult::Hit);
        assert_eq!(llc.stats().hits(StreamId::Texture), 1);
        assert_eq!(llc.stats().misses(StreamId::Texture), 1);
    }

    #[test]
    fn capacity_eviction_uses_policy() {
        let mut llc = small_llc();
        for b in conflicting_blocks(3) {
            llc.access(&Access::load(b * 64, StreamId::Z));
        }
        // Block 0 was LRU and must be gone; block 8 and 16 resident.
        assert!(matches!(llc.access(&Access::load(0, StreamId::Z)), AccessResult::Miss { .. }));
        assert_eq!(llc.stats().evictions, 2); // block 0 evicted, then block 8
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut llc = small_llc();
        let blocks = conflicting_blocks(3);
        llc.access(&Access::store(blocks[0] * 64, StreamId::RenderTarget));
        llc.access(&Access::load(blocks[1] * 64, StreamId::RenderTarget));
        match llc.access(&Access::load(blocks[2] * 64, StreamId::RenderTarget)) {
            AccessResult::Miss { dirty_eviction } => assert!(dirty_eviction),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn writeback_logs_victim_address() {
        let mut llc = small_llc().with_memory_log();
        let blocks = conflicting_blocks(3);
        // Dirty the first two blocks (filling both ways of the set), then
        // force an eviction with a third conflicting load.
        llc.access(&Access::store(blocks[0] * 64, StreamId::RenderTarget));
        llc.access(&Access::store(blocks[1] * 64, StreamId::RenderTarget));
        llc.access(&Access::load(blocks[2] * 64, StreamId::RenderTarget));
        let writebacks: Vec<u64> =
            llc.memory_log().unwrap().iter().filter(|(_, write)| *write).map(|(b, _)| *b).collect();
        // TestLru evicts blocks[0]; the logged writeback must carry the
        // victim's own address, not the incoming block's.
        assert_eq!(writebacks, vec![blocks[0]]);
        assert_ne!(blocks[0], blocks[2]);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut llc = small_llc();
        let blocks = conflicting_blocks(3);
        llc.access(&Access::load(blocks[0] * 64, StreamId::Z));
        llc.access(&Access::store(blocks[0] * 64, StreamId::Z)); // hit, dirties
        llc.access(&Access::load(blocks[1] * 64, StreamId::Z));
        llc.access(&Access::load(blocks[2] * 64, StreamId::Z)); // evicts block 0
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn characterization_hooks_fire() {
        let mut llc = small_llc().with_characterization();
        llc.access(&Access::store(0, StreamId::RenderTarget));
        llc.access(&Access::load(0, StreamId::Texture));
        let report = llc.characterization().unwrap();
        assert_eq!(report.rt_produced, 1);
        assert_eq!(report.rt_consumed, 1);
    }

    #[test]
    fn run_trace_matches_manual_replay() {
        let mut t = Trace::new("t", 0);
        for i in 0..100u64 {
            t.push(Access::load((i % 7) * 64, StreamId::Texture));
        }
        let mut a = small_llc();
        a.run_trace(&t, None);
        let mut b = small_llc();
        for acc in t.iter() {
            b.access(acc);
        }
        assert_eq!(a.stats().total_hits(), b.stats().total_hits());
        assert_eq!(a.stats().total_misses(), b.stats().total_misses());
    }

    #[test]
    #[should_panic(expected = "annotation length mismatch")]
    fn run_trace_rejects_bad_annotations() {
        let mut t = Trace::new("t", 0);
        t.push(Access::load(0, StreamId::Z));
        small_llc().run_trace(&t, Some(&[]));
    }

    #[test]
    fn sample_set_flag_follows_config() {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        assert!(cfg.is_sample_set(0));
        assert!(!cfg.is_sample_set(1));
    }

    #[test]
    fn run_source_matches_run_trace() {
        let mut t = Trace::new("t", 0);
        for i in 0..500u64 {
            t.push(Access::load((i % 23) * 64, StreamId::Texture));
        }
        let mut a = small_llc();
        a.run_trace(&t, None);
        let mut b = small_llc();
        let n = b.run_source(&mut t.source()).unwrap();
        assert_eq!(n, 500);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn run_source_carries_annotations() {
        let mut t = Trace::new("t", 0);
        for i in 0..100u64 {
            t.push(Access::load((i % 5) * 64, StreamId::Z));
        }
        let nu = crate::annotate_next_use(t.accesses());
        let mut a = small_llc();
        a.run_trace(&t, Some(&nu));
        let mut b = small_llc();
        b.run_source(&mut t.source_annotated(&nu)).unwrap();
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn streamed_memory_log_is_bit_identical() {
        let mut t = Trace::new("t", 0);
        for i in 0..300u64 {
            let addr = ((i * 7) % 40) * 64;
            t.push(if i % 3 == 0 {
                Access::store(addr, StreamId::RenderTarget)
            } else {
                Access::load(addr, StreamId::Texture)
            });
        }
        let mut a = small_llc().with_memory_log();
        a.run_trace(&t, None);
        let mut b = small_llc().with_memory_log();
        b.run_source(&mut t.source()).unwrap();
        assert_eq!(a.memory_log(), b.memory_log());
        assert!(!a.memory_log().unwrap().is_empty());
    }

    #[test]
    fn invariant_observer_passes_clean_replay() {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        let obs = crate::InvariantObserver::new(&cfg, 32);
        let mut llc = Llc::with_observer(cfg, TestLru { tick: 0 }, obs);
        for i in 0..500u64 {
            let addr = ((i * 13) % 40) * 64;
            if i % 4 == 0 {
                llc.access(&Access::store(addr, StreamId::RenderTarget));
            } else {
                llc.access(&Access::load(addr, StreamId::Texture));
            }
        }
        assert_eq!(llc.observer().checked(), 500);
    }

    /// A policy whose metadata overruns its declared one-bit budget.
    struct MetaHog;
    impl Policy for MetaHog {
        fn name(&self) -> &str {
            "META-HOG"
        }
        fn state_bits_per_block(&self) -> u32 {
            1
        }
        fn on_hit(&mut self, _a: &AccessInfo, _s: &mut [Block], _w: usize) {}
        fn choose_victim(&mut self, _a: &AccessInfo, _s: &mut [Block]) -> usize {
            0
        }
        fn on_fill(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
            set[way].meta = 5; // needs 3 bits, declared 1
            FillInfo::default()
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the declared")]
    fn invariant_observer_catches_meta_overrun() {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        let obs = crate::InvariantObserver::new(&cfg, 1);
        let mut llc = Llc::with_observer(cfg, MetaHog, obs);
        llc.access(&Access::load(0, StreamId::Texture));
    }

    #[test]
    fn mirror_fault_injector_flips_resident_tag_only() {
        let mut llc = small_llc();
        llc.access(&Access::load(0, StreamId::Texture));
        assert!(!llc.corrupt_mirror_tag_for_test(999_999));
        assert!(llc.corrupt_mirror_tag_for_test(0));
        // The mirror no longer matches block 0: the re-access misses.
        assert!(matches!(
            llc.access(&Access::load(0, StreamId::Texture)),
            AccessResult::Miss { .. }
        ));
    }

    /// A conflict-heavy mixed trace: same-set bursts (so in-batch fills
    /// collide with later probes of the same set) plus spread traffic.
    fn conflict_trace(len: u64) -> Trace {
        let blocks = conflicting_blocks(6);
        let mut t = Trace::new("conflicts", 0);
        for i in 0..len {
            let addr =
                if i % 3 == 0 { blocks[(i % 5) as usize] * 64 } else { ((i * 13) % 397) * 64 };
            t.push(if i % 4 == 0 {
                Access::store(addr, StreamId::RenderTarget)
            } else {
                Access::load(addr, StreamId::Texture)
            });
        }
        t
    }

    /// Every probe kind's batched replay is bit-identical to the scalar
    /// unbatched loop — stats and memory-log order — including in-batch
    /// same-set fills that force the retire-phase re-probe.
    #[test]
    fn batched_replay_matches_scalar_for_all_kinds() {
        let t = conflict_trace(3_000);
        let nu = crate::annotate_next_use(t.accesses());
        for annotated in [false, true] {
            let next_uses = annotated.then_some(nu.as_slice());
            let mut reference = small_llc().with_memory_log();
            reference.set_probe_kind(ProbeKind::Scalar);
            reference.run_trace(&t, next_uses);
            for kind in ProbeKind::all_available() {
                let mut llc = small_llc().with_memory_log();
                llc.set_probe_kind(kind);
                llc.run_trace(&t, next_uses);
                assert_eq!(llc.stats(), reference.stats(), "{kind:?} annotated={annotated}");
                assert_eq!(
                    llc.memory_log(),
                    reference.memory_log(),
                    "{kind:?} annotated={annotated}"
                );
            }
        }
    }

    /// The 16-way const-generic body (the paper's associativity, with the
    /// specialized AVX2 batch probe) is bit-identical across kinds too.
    #[test]
    fn batched_replay_matches_scalar_at_16_ways() {
        // 4 banks x 2 sets x 16 ways = 8 KB: tiny enough to evict.
        let cfg = LlcConfig { size_bytes: 8192, ways: 16, banks: 4, sample_period: 2 };
        let t = conflict_trace(4_000);
        let mut reference = Llc::new(cfg, TestLru { tick: 0 }).with_memory_log();
        reference.set_probe_kind(ProbeKind::Scalar);
        reference.run_trace(&t, None);
        assert!(reference.stats().evictions > 0, "trace must exercise the victim path");
        for kind in ProbeKind::all_available() {
            let mut llc = Llc::new(cfg, TestLru { tick: 0 }).with_memory_log();
            llc.set_probe_kind(kind);
            llc.run_trace(&t, None);
            assert_eq!(llc.stats(), reference.stats(), "{kind:?}");
            assert_eq!(llc.memory_log(), reference.memory_log(), "{kind:?}");
        }
    }

    /// Lane-interleaved replay leaves every cell bit-identical to a solo
    /// replay and reports the aggregate access count.
    #[test]
    fn replay_lanes_matches_solo_replay() {
        let t = conflict_trace(2_500);
        let mut solo = small_llc().with_memory_log();
        solo.run_trace(&t, None);
        let mut lanes: Vec<_> = (0..3).map(|_| small_llc().with_memory_log()).collect();
        let n = crate::replay_lanes(&mut lanes, t.accesses(), None);
        assert_eq!(n, 2_500 * 3);
        for lane in &lanes {
            assert_eq!(lane.stats(), solo.stats());
            assert_eq!(lane.memory_log(), solo.memory_log());
        }
    }

    #[test]
    #[should_panic(expected = "before the first access")]
    fn probe_kind_is_fixed_after_first_access() {
        let mut llc = small_llc();
        llc.access(&Access::load(0, StreamId::Texture));
        llc.set_probe_kind(ProbeKind::Scalar);
    }

    #[test]
    fn composed_observer_collects_both_sinks() {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        let obs = (CharTracker::new(&cfg), MemoryLog::new());
        let mut llc = Llc::with_observer(cfg, TestLru { tick: 0 }, obs);
        llc.access(&Access::store(0, StreamId::RenderTarget));
        llc.access(&Access::load(0, StreamId::Texture));
        assert_eq!(llc.characterization().unwrap().rt_consumed, 1);
        assert_eq!(llc.memory_log().unwrap().len(), 1); // the fill
    }
}
