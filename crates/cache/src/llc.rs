//! The banked, non-inclusive/non-exclusive LLC simulator.
//!
//! This is the offline LLC model of the paper: it digests the LLC load/store
//! access trace produced by the render-cache hierarchy and executes a
//! pluggable replacement [`Policy`]. A miss always fills the requested block
//! (unless the policy bypasses the access, as with uncached displayable
//! color); an eviction never invalidates the internal render caches.

use grtrace::{Access, Trace};

use crate::{AccessInfo, Block, CharTracker, LlcConfig, LlcGeometry, LlcStats, Policy};

/// Outcome of one LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The block was resident.
    Hit,
    /// The block was filled; `dirty_eviction` is `true` when a dirty block
    /// was displaced to memory.
    Miss {
        /// Whether the fill displaced a dirty block.
        dirty_eviction: bool,
    },
    /// The access went around the LLC (straight to memory).
    Bypass,
}

/// A banked last-level cache executing a replacement policy `P`.
///
/// # Example
///
/// ```
/// use grcache::{Llc, LlcConfig, AccessInfo, Block, FillInfo, Policy};
/// use grtrace::{Access, StreamId};
///
/// /// Evict way 0 always — a deliberately bad policy for the example.
/// struct Way0;
/// impl Policy for Way0 {
///     fn name(&self) -> &str { "WAY0" }
///     fn state_bits_per_block(&self) -> u32 { 0 }
///     fn on_hit(&mut self, _: &AccessInfo, _: &mut [Block], _: usize) {}
///     fn choose_victim(&mut self, _: &AccessInfo, _: &mut [Block]) -> usize { 0 }
///     fn on_fill(&mut self, _: &AccessInfo, _: &mut [Block], _: usize) -> FillInfo {
///         FillInfo::default()
///     }
/// }
///
/// let mut llc = Llc::new(LlcConfig::mb(8), Way0);
/// llc.access(&Access::load(0, StreamId::Texture));
/// llc.access(&Access::load(0, StreamId::Texture));
/// assert_eq!(llc.stats().total_hits(), 1);
/// ```
#[derive(Debug)]
pub struct Llc<P> {
    cfg: LlcConfig,
    /// Precomputed mapping constants — keeps the division in
    /// [`LlcConfig::sets_per_bank`] out of the per-access path.
    geo: LlcGeometry,
    policy: P,
    blocks: Vec<Block>,
    stats: LlcStats,
    chars: Option<CharTracker>,
    /// When enabled, every memory-bound transfer: demand-miss fills
    /// (`write = false`) and dirty-eviction writebacks (`write = true`).
    memory_log: Option<Vec<(u64, bool)>>,
    seq: u64,
}

impl<P: Policy> Llc<P> {
    /// Creates an empty LLC running `policy`.
    pub fn new(cfg: LlcConfig, policy: P) -> Self {
        Llc {
            cfg,
            geo: cfg.geometry(),
            policy,
            blocks: vec![Block::default(); cfg.total_blocks()],
            stats: LlcStats::new(),
            chars: None,
            memory_log: None,
            seq: 0,
        }
    }

    /// Enables the characterization tracker (Figures 6, 7, 9 bookkeeping).
    pub fn with_characterization(mut self) -> Self {
        self.chars = Some(CharTracker::new(&self.cfg));
        self
    }

    /// Records every DRAM-bound transfer (miss fills and writebacks) so a
    /// memory timing model can replay them.
    pub fn with_memory_log(mut self) -> Self {
        self.memory_log = Some(Vec::new());
        self
    }

    /// The recorded DRAM-bound transfers, if enabled via
    /// [`Llc::with_memory_log`]: `(block, is_write)` in issue order.
    pub fn memory_log(&self) -> Option<&[(u64, bool)]> {
        self.memory_log.as_deref()
    }

    /// The LLC geometry.
    pub fn config(&self) -> LlcConfig {
        self.cfg
    }

    /// The policy, for inspection.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Characterization report, if enabled via
    /// [`Llc::with_characterization`].
    pub fn characterization(&self) -> Option<&crate::CharReport> {
        self.chars.as_ref().map(|c| c.report())
    }

    /// Services one access with no next-use annotation.
    pub fn access(&mut self, access: &Access) -> AccessResult {
        self.access_annotated(access, u64::MAX)
    }

    /// Services one access carrying the trace position of the *next* access
    /// to the same block (`u64::MAX` if never; only Belady's policy uses it).
    pub fn access_annotated(&mut self, access: &Access, next_use: u64) -> AccessResult {
        let block = access.block();
        let (bank, set, tag) = self.geo.map(block);
        let info = AccessInfo {
            seq: self.seq,
            block,
            bank,
            set_in_bank: set,
            stream: access.stream,
            class: access.stream.policy_class(),
            write: access.write,
            is_sample: self.cfg.is_sample_set(set),
            next_use,
        };
        self.seq += 1;

        let ways = self.cfg.ways;
        let base = self.geo.set_base(bank, set);
        let set_blocks = &mut self.blocks[base..base + ways];

        // One pass over the set finds both the hit way and (for the miss
        // path) the first free way, so a miss never re-scans the set.
        let mut hit_way = None;
        let mut free_way = None;
        for (i, b) in set_blocks.iter().enumerate() {
            if !b.valid {
                if free_way.is_none() {
                    free_way = Some(i);
                }
            } else if b.tag == tag {
                hit_way = Some(i);
                break;
            }
        }

        if let Some(way) = hit_way {
            self.stats.record_hit(info.stream);
            set_blocks[way].dirty |= info.write;
            set_blocks[way].next_use = next_use;
            if let Some(chars) = self.chars.as_mut() {
                chars.on_hit(info.class, info.write, bank, set, way);
            }
            self.policy.on_hit(&info, set_blocks, way);
            return AccessResult::Hit;
        }

        self.stats.record_miss(info.stream);

        if self.policy.should_bypass(&info) {
            if info.write {
                self.stats.bypassed_writes += 1;
            } else {
                self.stats.bypassed_reads += 1;
            }
            if let Some(log) = self.memory_log.as_mut() {
                log.push((block, info.write));
            }
            return AccessResult::Bypass;
        }

        // Fill the free way found during the probe, else ask the policy
        // for a victim.
        let mut dirty_eviction = false;
        let way = match free_way {
            Some(w) => w,
            None => {
                let victim = self.policy.choose_victim(&info, set_blocks);
                debug_assert!(victim < ways, "victim out of range");
                self.policy.on_evict(&info, set_blocks, victim);
                self.stats.evictions += 1;
                if set_blocks[victim].dirty {
                    self.stats.writebacks += 1;
                    dirty_eviction = true;
                    if let Some(log) = self.memory_log.as_mut() {
                        // The writeback goes to the *victim's* address,
                        // rebuilt from its tag and the shared (bank, set).
                        let victim_block = self.geo.unmap(bank, set, set_blocks[victim].tag);
                        log.push((victim_block, true));
                    }
                }
                if let Some(chars) = self.chars.as_mut() {
                    chars.on_evict(bank, set, victim);
                }
                victim
            }
        };

        if let Some(log) = self.memory_log.as_mut() {
            log.push((block, false));
        }
        set_blocks[way] = Block { valid: true, tag, dirty: info.write, meta: 0, next_use };
        let fill = self.policy.on_fill(&info, set_blocks, way);
        self.stats.record_fill(info.class, fill.distant);
        if let Some(chars) = self.chars.as_mut() {
            chars.on_fill(info.class, bank, set, way);
        }
        AccessResult::Miss { dirty_eviction }
    }

    /// Replays a whole trace. When `next_uses` is provided it must have one
    /// entry per access (see [`crate::annotate_next_use`]).
    ///
    /// # Panics
    ///
    /// Panics if `next_uses` is provided with a length different from the
    /// trace.
    pub fn run_trace(&mut self, trace: &Trace, next_uses: Option<&[u64]>) {
        if let Some(nu) = next_uses {
            assert_eq!(nu.len(), trace.len(), "annotation length mismatch");
            for (a, &n) in trace.iter().zip(nu) {
                self.access_annotated(a, n);
            }
        } else {
            for a in trace.iter() {
                self.access(a);
            }
        }
    }

    /// Consumes the LLC, returning `(stats, policy)`.
    pub fn into_parts(self) -> (LlcStats, P) {
        (self.stats, self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FillInfo;
    use grtrace::StreamId;

    /// LRU-by-sequence policy for testing the simulator plumbing.
    struct TestLru {
        tick: u32,
    }

    impl Policy for TestLru {
        fn name(&self) -> &str {
            "TEST-LRU"
        }
        fn state_bits_per_block(&self) -> u32 {
            32
        }
        fn on_hit(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) {
            set[way].meta = self.tick;
            self.tick += 1;
        }
        fn choose_victim(&mut self, _a: &AccessInfo, set: &mut [Block]) -> usize {
            set.iter().enumerate().min_by_key(|(_, b)| b.meta).map(|(i, _)| i).unwrap()
        }
        fn on_fill(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
            set[way].meta = self.tick;
            self.tick += 1;
            FillInfo::rrip(2, 3)
        }
    }

    fn small_llc() -> Llc<TestLru> {
        // 4 banks x 2 sets x 2 ways = 16 blocks = 1 KB.
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        Llc::new(cfg, TestLru { tick: 0 })
    }

    /// Block addresses that land in bank 0, set 0 of `small_llc`.
    fn conflicting_blocks(n: u64) -> Vec<u64> {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        (0..10_000u64)
            .filter(|&b| {
                let (bank, set, _) = cfg.map(b);
                (bank, set) == (0, 0)
            })
            .take(n as usize)
            .collect()
    }

    #[test]
    fn fill_then_hit() {
        let mut llc = small_llc();
        let a = Access::load(0, StreamId::Texture);
        assert!(matches!(llc.access(&a), AccessResult::Miss { .. }));
        assert_eq!(llc.access(&a), AccessResult::Hit);
        assert_eq!(llc.stats().hits(StreamId::Texture), 1);
        assert_eq!(llc.stats().misses(StreamId::Texture), 1);
    }

    #[test]
    fn capacity_eviction_uses_policy() {
        let mut llc = small_llc();
        for b in conflicting_blocks(3) {
            llc.access(&Access::load(b * 64, StreamId::Z));
        }
        // Block 0 was LRU and must be gone; block 8 and 16 resident.
        assert!(matches!(llc.access(&Access::load(0, StreamId::Z)), AccessResult::Miss { .. }));
        assert_eq!(llc.stats().evictions, 2); // block 0 evicted, then block 8
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut llc = small_llc();
        let blocks = conflicting_blocks(3);
        llc.access(&Access::store(blocks[0] * 64, StreamId::RenderTarget));
        llc.access(&Access::load(blocks[1] * 64, StreamId::RenderTarget));
        match llc.access(&Access::load(blocks[2] * 64, StreamId::RenderTarget)) {
            AccessResult::Miss { dirty_eviction } => assert!(dirty_eviction),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn writeback_logs_victim_address() {
        let mut llc = small_llc().with_memory_log();
        let blocks = conflicting_blocks(3);
        // Dirty the first two blocks (filling both ways of the set), then
        // force an eviction with a third conflicting load.
        llc.access(&Access::store(blocks[0] * 64, StreamId::RenderTarget));
        llc.access(&Access::store(blocks[1] * 64, StreamId::RenderTarget));
        llc.access(&Access::load(blocks[2] * 64, StreamId::RenderTarget));
        let writebacks: Vec<u64> =
            llc.memory_log().unwrap().iter().filter(|(_, write)| *write).map(|(b, _)| *b).collect();
        // TestLru evicts blocks[0]; the logged writeback must carry the
        // victim's own address, not the incoming block's.
        assert_eq!(writebacks, vec![blocks[0]]);
        assert_ne!(blocks[0], blocks[2]);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut llc = small_llc();
        let blocks = conflicting_blocks(3);
        llc.access(&Access::load(blocks[0] * 64, StreamId::Z));
        llc.access(&Access::store(blocks[0] * 64, StreamId::Z)); // hit, dirties
        llc.access(&Access::load(blocks[1] * 64, StreamId::Z));
        llc.access(&Access::load(blocks[2] * 64, StreamId::Z)); // evicts block 0
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn characterization_hooks_fire() {
        let mut llc = small_llc().with_characterization();
        llc.access(&Access::store(0, StreamId::RenderTarget));
        llc.access(&Access::load(0, StreamId::Texture));
        let report = llc.characterization().unwrap();
        assert_eq!(report.rt_produced, 1);
        assert_eq!(report.rt_consumed, 1);
    }

    #[test]
    fn run_trace_matches_manual_replay() {
        let mut t = Trace::new("t", 0);
        for i in 0..100u64 {
            t.push(Access::load((i % 7) * 64, StreamId::Texture));
        }
        let mut a = small_llc();
        a.run_trace(&t, None);
        let mut b = small_llc();
        for acc in t.iter() {
            b.access(acc);
        }
        assert_eq!(a.stats().total_hits(), b.stats().total_hits());
        assert_eq!(a.stats().total_misses(), b.stats().total_misses());
    }

    #[test]
    #[should_panic(expected = "annotation length mismatch")]
    fn run_trace_rejects_bad_annotations() {
        let mut t = Trace::new("t", 0);
        t.push(Access::load(0, StreamId::Z));
        small_llc().run_trace(&t, Some(&[]));
    }

    #[test]
    fn sample_set_flag_follows_config() {
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        assert!(cfg.is_sample_set(0));
        assert!(!cfg.is_sample_set(1));
    }
}
