//! Characterization instrumentation for inter-/intra-stream reuse analysis.
//!
//! This module implements the bookkeeping of Section 2.3 of the paper,
//! independently of the replacement policy in force:
//!
//! * every render-target block carries a conceptual *RT bit*; a texture
//!   sampler hit to such a block is an **inter-stream** reuse (dynamic
//!   texturing) and *consumes* the render target,
//! * texture and Z blocks move through **epochs** `E0, E1, E2, E≥3`
//!   demarcated by the LLC hits they enjoy; the *death ratio* of `Ek` is the
//!   fraction of blocks that entered `Ek` but never reached `Ek+1`.
//!
//! The resulting [`CharReport`] backs Figures 6, 7, and 9.

use grtrace::PolicyClass;

use crate::LlcConfig;

/// Stream-kind a resident block is currently attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Kind {
    #[default]
    None,
    /// A render target whose RT bit is set (potential dynamic texture).
    Rt,
    /// A texture block (static, or a consumed render target).
    Tex,
    /// A depth-buffer block.
    Z,
}

#[derive(Debug, Clone, Copy, Default)]
struct CharBlock {
    kind: Kind,
    /// Epoch index, saturating at 3 (`E≥3`).
    epoch: u8,
}

/// Aggregated characterization counts for one LLC run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CharReport {
    /// Texture sampler hits that consumed a render-target block.
    pub tex_inter_hits: u64,
    /// Texture sampler hits to blocks already attributed to the texture
    /// stream.
    pub tex_intra_hits: u64,
    /// Intra-stream texture hits enjoyed by blocks in epoch `Ek`
    /// (`k = 0..=3`, with index 3 collecting `E≥3`).
    pub tex_hits_from_epoch: [u64; 4],
    /// Number of texture blocks that entered epoch `Ek`.
    pub tex_epoch_entries: [u64; 4],
    /// Z hits enjoyed by blocks in epoch `Ek`.
    pub z_hits_from_epoch: [u64; 4],
    /// Number of Z blocks that entered epoch `Ek`.
    pub z_epoch_entries: [u64; 4],
    /// Render-target blocks produced (RT bit set by a fill or an RT access).
    pub rt_produced: u64,
    /// Render-target blocks consumed by the texture sampler from the LLC.
    pub rt_consumed: u64,
    /// Render-target blocks evicted with the RT bit still set.
    pub rt_evicted_unconsumed: u64,
}

impl CharReport {
    /// Death ratio of texture epoch `k` (`k = 0..=2`): the fraction of
    /// blocks entering `Ek` that never reached `Ek+1`. Returns 0 when no
    /// block entered `Ek`.
    pub fn tex_death_ratio(&self, k: usize) -> f64 {
        death_ratio(&self.tex_epoch_entries, k)
    }

    /// Death ratio of Z epoch `k` (`k = 0..=2`).
    pub fn z_death_ratio(&self, k: usize) -> f64 {
        death_ratio(&self.z_epoch_entries, k)
    }

    /// Fraction of all texture sampler hits that were inter-stream reuses.
    pub fn tex_inter_fraction(&self) -> f64 {
        let total = self.tex_inter_hits + self.tex_intra_hits;
        if total == 0 {
            0.0
        } else {
            self.tex_inter_hits as f64 / total as f64
        }
    }

    /// Fraction of produced render-target blocks consumed by the texture
    /// sampler through the LLC (lower panel of Figure 6).
    pub fn rt_consumption_rate(&self) -> f64 {
        if self.rt_produced == 0 {
            0.0
        } else {
            self.rt_consumed as f64 / self.rt_produced as f64
        }
    }

    /// Distribution of intra-stream texture hits across epochs (upper panel
    /// of Figure 7); sums to 1 when any intra-stream hit occurred.
    pub fn tex_epoch_hit_distribution(&self) -> [f64; 4] {
        distribution(&self.tex_hits_from_epoch)
    }

    /// Merges another run's counts into this one.
    pub fn merge(&mut self, other: &CharReport) {
        self.tex_inter_hits += other.tex_inter_hits;
        self.tex_intra_hits += other.tex_intra_hits;
        self.rt_produced += other.rt_produced;
        self.rt_consumed += other.rt_consumed;
        self.rt_evicted_unconsumed += other.rt_evicted_unconsumed;
        for i in 0..4 {
            self.tex_hits_from_epoch[i] += other.tex_hits_from_epoch[i];
            self.tex_epoch_entries[i] += other.tex_epoch_entries[i];
            self.z_hits_from_epoch[i] += other.z_hits_from_epoch[i];
            self.z_epoch_entries[i] += other.z_epoch_entries[i];
        }
    }
}

fn death_ratio(entries: &[u64; 4], k: usize) -> f64 {
    assert!(k <= 2, "death ratio tracked for E0..E2 only");
    if entries[k] == 0 {
        0.0
    } else {
        (entries[k] - entries[k + 1]) as f64 / entries[k] as f64
    }
}

fn distribution(counts: &[u64; 4]) -> [f64; 4] {
    let total: u64 = counts.iter().sum();
    let mut out = [0.0; 4];
    if total > 0 {
        for i in 0..4 {
            out[i] = counts[i] as f64 / total as f64;
        }
    }
    out
}

/// Per-block characterization state for a whole LLC.
#[derive(Debug, Clone)]
pub struct CharTracker {
    ways: usize,
    sets_per_bank: usize,
    blocks: Vec<CharBlock>,
    report: CharReport,
}

impl CharTracker {
    /// Creates a tracker sized for `cfg`.
    pub fn new(cfg: &LlcConfig) -> Self {
        CharTracker {
            ways: cfg.ways,
            sets_per_bank: cfg.sets_per_bank(),
            blocks: vec![CharBlock::default(); cfg.total_blocks()],
            report: CharReport::default(),
        }
    }

    #[inline]
    fn index(&self, bank: usize, set: usize, way: usize) -> usize {
        (bank * self.sets_per_bank + set) * self.ways + way
    }

    /// Records a fill of `class` into `(bank, set, way)`.
    pub fn on_fill(&mut self, class: PolicyClass, bank: usize, set: usize, way: usize) {
        let i = self.index(bank, set, way);
        self.blocks[i] = match class {
            PolicyClass::Rt => {
                self.report.rt_produced += 1;
                CharBlock { kind: Kind::Rt, epoch: 0 }
            }
            PolicyClass::Tex => {
                self.report.tex_epoch_entries[0] += 1;
                CharBlock { kind: Kind::Tex, epoch: 0 }
            }
            PolicyClass::Z => {
                self.report.z_epoch_entries[0] += 1;
                CharBlock { kind: Kind::Z, epoch: 0 }
            }
            PolicyClass::Other => CharBlock::default(),
        };
    }

    /// Records a hit of `class` on `(bank, set, way)`. `write` marks store
    /// hits (including render-cache writebacks), which update a block
    /// without *reusing* it — epochs advance on read hits only, matching
    /// the paper's definition of a reuse.
    pub fn on_hit(&mut self, class: PolicyClass, write: bool, bank: usize, set: usize, way: usize) {
        let i = self.index(bank, set, way);
        let b = &mut self.blocks[i];
        match class {
            PolicyClass::Tex => match b.kind {
                Kind::Rt => {
                    // Inter-stream reuse: render target consumed as texture.
                    self.report.tex_inter_hits += 1;
                    self.report.rt_consumed += 1;
                    self.report.tex_epoch_entries[0] += 1;
                    *b = CharBlock { kind: Kind::Tex, epoch: 0 };
                }
                Kind::Tex => {
                    self.report.tex_intra_hits += 1;
                    self.report.tex_hits_from_epoch[b.epoch as usize] += 1;
                    if !write && b.epoch < 3 {
                        b.epoch += 1;
                        self.report.tex_epoch_entries[b.epoch as usize] += 1;
                    }
                }
                Kind::Z | Kind::None => {
                    // A non-texture surface re-read through the samplers;
                    // treat the block as entering the texture stream.
                    self.report.tex_epoch_entries[0] += 1;
                    *b = CharBlock { kind: Kind::Tex, epoch: 0 };
                }
            },
            PolicyClass::Rt => {
                // Render-target access: (re)sets the RT bit. A fresh
                // transition counts as a new production.
                if b.kind != Kind::Rt {
                    self.report.rt_produced += 1;
                }
                *b = CharBlock { kind: Kind::Rt, epoch: 0 };
            }
            PolicyClass::Z => match b.kind {
                Kind::Z => {
                    if !write {
                        self.report.z_hits_from_epoch[b.epoch as usize] += 1;
                        if b.epoch < 3 {
                            b.epoch += 1;
                            self.report.z_epoch_entries[b.epoch as usize] += 1;
                        }
                    }
                }
                _ => {
                    self.report.z_epoch_entries[0] += 1;
                    *b = CharBlock { kind: Kind::Z, epoch: 0 };
                }
            },
            PolicyClass::Other => {}
        }
    }

    /// Records the eviction of `(bank, set, way)`.
    pub fn on_evict(&mut self, bank: usize, set: usize, way: usize) {
        let i = self.index(bank, set, way);
        if self.blocks[i].kind == Kind::Rt {
            self.report.rt_evicted_unconsumed += 1;
        }
        self.blocks[i] = CharBlock::default();
    }

    /// The accumulated report.
    pub fn report(&self) -> &CharReport {
        &self.report
    }

    /// Consumes the tracker, returning the report.
    pub fn into_report(self) -> CharReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> CharTracker {
        CharTracker::new(&LlcConfig::mb(8))
    }

    #[test]
    fn rt_to_tex_hit_is_inter_stream() {
        let mut t = tracker();
        t.on_fill(PolicyClass::Rt, 0, 0, 0);
        t.on_hit(PolicyClass::Tex, false, 0, 0, 0);
        assert_eq!(t.report().tex_inter_hits, 1);
        assert_eq!(t.report().rt_consumed, 1);
        assert_eq!(t.report().rt_produced, 1);
        assert!((t.report().rt_consumption_rate() - 1.0).abs() < 1e-12);
        // The consumed block re-enters the texture stream at E0.
        assert_eq!(t.report().tex_epoch_entries[0], 1);
    }

    #[test]
    fn tex_epochs_advance_on_hits() {
        let mut t = tracker();
        t.on_fill(PolicyClass::Tex, 0, 0, 0);
        t.on_hit(PolicyClass::Tex, false, 0, 0, 0); // E0 -> E1
        t.on_hit(PolicyClass::Tex, false, 0, 0, 0); // E1 -> E2
        t.on_hit(PolicyClass::Tex, false, 0, 0, 0); // E2 -> E3
        t.on_hit(PolicyClass::Tex, false, 0, 0, 0); // stays E>=3
        let r = t.report();
        assert_eq!(r.tex_hits_from_epoch, [1, 1, 1, 1]);
        assert_eq!(r.tex_epoch_entries, [1, 1, 1, 1]);
        assert_eq!(r.tex_intra_hits, 4);
    }

    #[test]
    fn death_ratio_counts_unadvanced_blocks() {
        let mut t = tracker();
        // Two blocks enter E0; one advances to E1.
        t.on_fill(PolicyClass::Tex, 0, 0, 0);
        t.on_fill(PolicyClass::Tex, 0, 0, 1);
        t.on_hit(PolicyClass::Tex, false, 0, 0, 0);
        t.on_evict(0, 0, 1);
        assert!((t.report().tex_death_ratio(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rt_eviction_with_bit_counts_unconsumed() {
        let mut t = tracker();
        t.on_fill(PolicyClass::Rt, 0, 0, 0);
        t.on_evict(0, 0, 0);
        assert_eq!(t.report().rt_evicted_unconsumed, 1);
        assert_eq!(t.report().rt_consumed, 0);
    }

    #[test]
    fn rt_rebind_counts_new_production() {
        let mut t = tracker();
        t.on_fill(PolicyClass::Rt, 0, 0, 0);
        t.on_hit(PolicyClass::Tex, false, 0, 0, 0); // consumed -> Tex
        t.on_hit(PolicyClass::Rt, false, 0, 0, 0); // DirectX reuses the RT object
        assert_eq!(t.report().rt_produced, 2);
    }

    #[test]
    fn blending_hit_keeps_single_production() {
        let mut t = tracker();
        t.on_fill(PolicyClass::Rt, 0, 0, 0);
        t.on_hit(PolicyClass::Rt, false, 0, 0, 0);
        t.on_hit(PolicyClass::Rt, false, 0, 0, 0);
        assert_eq!(t.report().rt_produced, 1);
    }

    #[test]
    fn z_epochs_tracked_separately() {
        let mut t = tracker();
        t.on_fill(PolicyClass::Z, 0, 0, 0);
        t.on_hit(PolicyClass::Z, false, 0, 0, 0);
        assert_eq!(t.report().z_hits_from_epoch[0], 1);
        assert_eq!(t.report().z_epoch_entries[1], 1);
        assert_eq!(t.report().tex_epoch_entries[0], 0);
    }

    #[test]
    fn epoch_hit_distribution_sums_to_one() {
        let mut t = tracker();
        t.on_fill(PolicyClass::Tex, 0, 0, 0);
        for _ in 0..5 {
            t.on_hit(PolicyClass::Tex, false, 0, 0, 0);
        }
        let d = t.report().tex_epoch_hit_distribution();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = tracker();
        a.on_fill(PolicyClass::Rt, 0, 0, 0);
        let mut report = a.report().clone();
        let mut b = tracker();
        b.on_fill(PolicyClass::Rt, 0, 0, 0);
        b.on_hit(PolicyClass::Tex, false, 0, 0, 0);
        report.merge(b.report());
        assert_eq!(report.rt_produced, 2);
        assert_eq!(report.rt_consumed, 1);
    }
}
