//! A plain write-back, write-allocate, true-LRU set-associative cache.
//!
//! This is the building block for the small per-stream render caches. It is
//! deliberately simple: the interesting replacement behaviour in this
//! reproduction lives in the LLC ([`crate::llc`]), not here.

use crate::CacheConfig;

/// Outcome of a [`LruCache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The block was present.
    Hit,
    /// The block was absent and has been filled. If filling displaced a
    /// dirty block, `writeback` carries its block address.
    Miss {
        /// Block address of a displaced dirty block, if any.
        writeback: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Lower is more recently used.
    age: u8,
}

/// Write-back, write-allocate, true-LRU set-associative cache.
///
/// # Example
///
/// ```
/// use grcache::{CacheConfig, Lookup, LruCache};
///
/// let mut c = LruCache::new(CacheConfig::kb(1, 16));
/// assert_eq!(c.access(7, true), Lookup::Miss { writeback: None });
/// assert_eq!(c.access(7, false), Lookup::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        LruCache { cfg, lines: vec![Line::default(); cfg.blocks()], hits: 0, misses: 0 }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up `block`; on a miss the block is filled (write-allocate).
    /// Stores mark the block dirty; displacing a dirty block reports a
    /// writeback.
    pub fn access(&mut self, block: u64, write: bool) -> Lookup {
        let (set, tag) = self.cfg.map(block);
        let ways = self.cfg.ways;
        let base = set * ways;
        let set_lines = &mut self.lines[base..base + ways];

        // Probe.
        if let Some(hit_way) = set_lines.iter().position(|l| l.valid && l.tag == tag) {
            let old_age = set_lines[hit_way].age;
            for l in set_lines.iter_mut() {
                if l.valid && l.age < old_age {
                    l.age += 1;
                }
            }
            set_lines[hit_way].age = 0;
            set_lines[hit_way].dirty |= write;
            self.hits += 1;
            return Lookup::Hit;
        }

        // Miss: pick an invalid way, else the LRU (max age) way.
        self.misses += 1;
        let victim = set_lines.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set_lines
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| l.age)
                .map(|(i, _)| i)
                .expect("non-empty set")
        });
        // The victim's address is reconstructed through the same
        // map/unmap pair the LLC's writeback path uses, so the stored tag
        // and the set index always recompose to the original block.
        let writeback = if set_lines[victim].valid && set_lines[victim].dirty {
            Some(self.cfg.unmap(set, set_lines[victim].tag))
        } else {
            None
        };
        for l in set_lines.iter_mut() {
            if l.valid {
                l.age = l.age.saturating_add(1);
            }
        }
        set_lines[victim] = Line { valid: true, dirty: write, tag, age: 0 };
        Lookup::Miss { writeback }
    }

    /// Drains every dirty block, returning their block addresses. Used at
    /// end-of-frame to flush pending writebacks into the LLC trace.
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let ways = self.cfg.ways;
        let cfg = self.cfg;
        let mut out = Vec::new();
        for set in 0..cfg.sets() {
            for l in &mut self.lines[set * ways..(set + 1) * ways] {
                if l.valid && l.dirty {
                    out.push(cfg.unmap(set, l.tag));
                    l.dirty = false;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LruCache {
        // 2 sets x 2 ways.
        LruCache::new(CacheConfig { size_bytes: 4 * 64, ways: 2 })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(matches!(c.access(0, false), Lookup::Miss { .. }));
        assert_eq!(c.access(0, false), Lookup::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Blocks 0, 2, 4 all map to set 0 (even block addresses).
        c.access(0, false);
        c.access(2, false);
        c.access(0, false); // 0 is now MRU; 2 is LRU
        c.access(4, false); // evicts 2
        assert_eq!(c.access(0, false), Lookup::Hit);
        assert!(matches!(c.access(2, false), Lookup::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true);
        c.access(2, false);
        // Filling block 4 evicts block 0, which is dirty.
        match c.access(4, false) {
            Lookup::Miss { writeback: Some(addr) } => assert_eq!(addr, 0),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
    }

    #[test]
    fn clean_eviction_reports_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(2, false);
        assert_eq!(c.access(4, false), Lookup::Miss { writeback: None });
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // hit, makes dirty
        c.access(2, false);
        match c.access(4, false) {
            Lookup::Miss { writeback: Some(0) } => {}
            other => panic!("expected writeback of block 0, got {other:?}"),
        }
    }

    #[test]
    fn flush_dirty_returns_and_clears() {
        let mut c = tiny();
        c.access(0, true);
        c.access(1, true);
        c.access(2, false);
        let mut dirty = c.flush_dirty();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 1]);
        assert!(c.flush_dirty().is_empty());
    }

    /// Under random mixed traffic on a multi-set geometry, every address
    /// the cache reports — eviction writebacks and end-of-frame flushes —
    /// reconstructs to a block that was actually written: the stored tag
    /// and set index round-trip through the shared map/unmap math.
    #[test]
    fn writebacks_reconstruct_previously_written_blocks() {
        use std::collections::HashSet;
        let mut c = LruCache::new(CacheConfig::kb(16, 16)); // 16 sets x 16 ways
        let mut written = HashSet::new();
        let mut x = 0x243F6A8885A308D3u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let block = x % 4096;
            let write = x.is_multiple_of(3);
            if write {
                written.insert(block);
            }
            if let Lookup::Miss { writeback: Some(wb) } = c.access(block, write) {
                assert!(written.contains(&wb), "writeback of never-written block {wb}");
            }
        }
        let flushed = c.flush_dirty();
        assert!(!flushed.is_empty(), "random write traffic left no dirty blocks");
        for wb in flushed {
            assert!(written.contains(&wb), "flush of never-written block {wb}");
        }
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0, false); // set 0
        c.access(1, false); // set 1
        assert_eq!(c.access(0, false), Lookup::Hit);
        assert_eq!(c.access(1, false), Lookup::Hit);
    }
}
