//! Per-stream LLC hit/miss statistics.

use grtrace::{PolicyClass, StreamId};

/// Counters the LLC simulator maintains for every run.
///
/// These back Figures 1, 5, 8, 12, 13, and 14 of the paper: per-stream hits
/// and misses, per-class fill counts at the distant RRPV, bypasses, and
/// dirty-eviction writebacks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LlcStats {
    hits: [u64; 9],
    misses: [u64; 9],
    /// Fills per policy class.
    fills: [u64; 4],
    /// Fills whose reported insertion RRPV was the distant (maximum) value.
    distant_fills: [u64; 4],
    /// Read accesses that bypassed the LLC.
    pub bypassed_reads: u64,
    /// Write accesses that bypassed the LLC.
    pub bypassed_writes: u64,
    /// Dirty blocks evicted to memory.
    pub writebacks: u64,
    /// Valid blocks displaced (dirty or clean).
    pub evictions: u64,
}

impl LlcStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_hit(&mut self, stream: StreamId) {
        self.hits[stream.index()] += 1;
    }

    pub(crate) fn record_miss(&mut self, stream: StreamId) {
        self.misses[stream.index()] += 1;
    }

    pub(crate) fn record_fill(&mut self, class: PolicyClass, distant: bool) {
        self.fills[class.index()] += 1;
        if distant {
            self.distant_fills[class.index()] += 1;
        }
    }

    /// Hits for one stream.
    pub fn hits(&self, stream: StreamId) -> u64 {
        self.hits[stream.index()]
    }

    /// Misses for one stream.
    pub fn misses(&self, stream: StreamId) -> u64 {
        self.misses[stream.index()]
    }

    /// Total hits across all streams.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Total misses across all streams (bypassed accesses count as misses).
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Total accesses serviced.
    pub fn total_accesses(&self) -> u64 {
        self.total_hits() + self.total_misses()
    }

    /// Hit rate for one stream (0 when the stream had no accesses).
    pub fn hit_rate(&self, stream: StreamId) -> f64 {
        let h = self.hits(stream);
        let m = self.misses(stream);
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Overall hit rate.
    pub fn overall_hit_rate(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.total_hits() as f64 / total as f64
        }
    }

    /// Hit rate aggregated over every stream in a policy class.
    pub fn class_hit_rate(&self, class: PolicyClass) -> f64 {
        let (mut h, mut m) = (0u64, 0u64);
        for s in StreamId::ALL {
            if s.policy_class() == class {
                h += self.hits(s);
                m += self.misses(s);
            }
        }
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Fraction of fills of `class` inserted at the distant RRPV
    /// (Figure 8).
    pub fn distant_fill_fraction(&self, class: PolicyClass) -> f64 {
        let f = self.fills[class.index()];
        if f == 0 {
            0.0
        } else {
            self.distant_fills[class.index()] as f64 / f as f64
        }
    }

    /// Fills recorded for `class`.
    pub fn fills(&self, class: PolicyClass) -> u64 {
        self.fills[class.index()]
    }

    /// Fills of `class` inserted at the distant RRPV.
    pub fn distant_fills(&self, class: PolicyClass) -> u64 {
        self.distant_fills[class.index()]
    }

    /// Merges another run's statistics into this one.
    pub fn merge(&mut self, other: &LlcStats) {
        for i in 0..9 {
            self.hits[i] += other.hits[i];
            self.misses[i] += other.misses[i];
        }
        for i in 0..4 {
            self.fills[i] += other.fills[i];
            self.distant_fills[i] += other.distant_fills[i];
        }
        self.bypassed_reads += other.bypassed_reads;
        self.bypassed_writes += other.bypassed_writes;
        self.writebacks += other.writebacks;
        self.evictions += other.evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let mut s = LlcStats::new();
        s.record_hit(StreamId::Texture);
        s.record_miss(StreamId::Texture);
        s.record_miss(StreamId::Texture);
        assert!((s.hit_rate(StreamId::Texture) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.hit_rate(StreamId::Z), 0.0);
    }

    #[test]
    fn distant_fill_fraction() {
        let mut s = LlcStats::new();
        s.record_fill(PolicyClass::Tex, true);
        s.record_fill(PolicyClass::Tex, false);
        s.record_fill(PolicyClass::Tex, false);
        assert!((s.distant_fill_fraction(PolicyClass::Tex) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn class_hit_rate_includes_display_in_rt() {
        let mut s = LlcStats::new();
        s.record_hit(StreamId::RenderTarget);
        s.record_miss(StreamId::Display);
        assert!((s.class_hit_rate(PolicyClass::Rt) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = LlcStats::new();
        a.record_hit(StreamId::Z);
        a.writebacks = 2;
        let mut b = LlcStats::new();
        b.record_miss(StreamId::Z);
        b.writebacks = 3;
        a.merge(&b);
        assert_eq!(a.hits(StreamId::Z), 1);
        assert_eq!(a.misses(StreamId::Z), 1);
        assert_eq!(a.writebacks, 5);
    }
}
