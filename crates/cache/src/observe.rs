//! Composable LLC observers — the *sinks* of the streaming pipeline.
//!
//! The LLC simulator is generic over one [`LlcObserver`] chosen at
//! construction. Observers are notified of hits, fills, evictions, and
//! bypasses and accumulate whatever instrumentation they exist for; the
//! default [`NullObserver`] compiles every notification away, so the
//! plain-statistics hot path carries **zero per-access observer branches**
//! (the old design tested two `Option` fields on every access).
//!
//! Provided observers:
//!
//! * [`NullObserver`] — nothing (the default),
//! * [`MemoryLog`] — every DRAM-bound transfer, for the `grgpu` timing
//!   model,
//! * [`crate::CharTracker`] — the paper's characterization instrumentation
//!   (Figures 6, 7, 9) implements the trait directly.
//!
//! Observers compose: a 2-tuple `(A, B)` notifies both members, and
//! `Option<O>` selects an observer at runtime (`None` costs one
//! predictable branch per event). The runner combines these to build
//! exactly the instrumentation a run asks for.

use crate::chartrack::CharTracker;
use crate::policy::AccessInfo;
use crate::{Block, CharReport, LlcConfig, LlcGeometry};

/// A read-only snapshot of one set's post-event state, handed to observers
/// that opt in via [`LlcObserver::WANTS_SET_STATE`]. The simulator emits it
/// after the policy callback of every hit and fill — the two events that
/// mutate per-set state — so a checking observer can validate structural
/// invariants without access to the simulator's private arrays.
#[derive(Debug, Clone, Copy)]
pub struct SetSnapshot<'a> {
    /// The probe mirror's per-way tag words for this set.
    pub tags: &'a [u64],
    /// The probe mirror's validity bitmask (bit `w` = way `w` valid).
    pub valid_mask: u64,
    /// The authoritative policy-facing per-way state.
    pub blocks: &'a [Block],
    /// The way the event touched (the hit way or the filled way).
    pub touched_way: usize,
    /// `true` for a hit, `false` for a fill.
    pub hit: bool,
}

/// Receives notifications about every LLC event.
///
/// All methods default to no-ops so observers implement only what they
/// need. The contract mirrors the simulator's event order per access:
/// `observe_hit` *or* (`observe_bypass` | [`observe_evict`](Self::observe_evict)?
/// then `observe_fill`). An eviction notification always precedes the fill
/// that displaces the victim.
pub trait LlcObserver {
    /// Whether this observer needs the victim's rebuilt block address in
    /// [`LlcObserver::observe_evict`]. Reconstructing it costs an
    /// [`crate::LlcGeometry::unmap`] per eviction, so the simulator skips
    /// the computation entirely when no observer asks for it.
    const NEEDS_VICTIM_ADDR: bool = false;

    /// The access hit way `way` of its set.
    #[inline]
    fn observe_hit(&mut self, info: &AccessInfo, way: usize) {
        let _ = (info, way);
    }

    /// The access missed and went around the LLC straight to memory.
    #[inline]
    fn observe_bypass(&mut self, info: &AccessInfo) {
        let _ = info;
    }

    /// A valid block in way `victim_way` is about to be displaced.
    /// `victim_block` is the victim's block address when
    /// [`LlcObserver::NEEDS_VICTIM_ADDR`] is set (0 otherwise); `dirty` is
    /// whether the displacement writes the victim back to memory.
    #[inline]
    fn observe_evict(
        &mut self,
        info: &AccessInfo,
        victim_way: usize,
        victim_block: u64,
        dirty: bool,
    ) {
        let _ = (info, victim_way, victim_block, dirty);
    }

    /// The missing block was installed in way `way`.
    #[inline]
    fn observe_fill(&mut self, info: &AccessInfo, way: usize) {
        let _ = (info, way);
    }

    /// Whether this observer wants a [`SetSnapshot`] after every hit and
    /// fill. Taking the snapshot re-borrows the touched set's mirror and
    /// block slices, so the simulator skips it entirely (the flag is a
    /// compile-time constant) unless an attached observer opts in.
    const WANTS_SET_STATE: bool = false;

    /// Post-event snapshot of the touched set. Emitted after the policy's
    /// `on_hit` / `on_fill` callback returns, and only when
    /// [`LlcObserver::WANTS_SET_STATE`] is set.
    #[inline]
    fn observe_set_state(&mut self, info: &AccessInfo, snap: SetSnapshot<'_>) {
        let _ = (info, snap);
    }

    /// The recorded DRAM-bound transfers, if this observer keeps them.
    fn memory_log(&self) -> Option<&[(u64, bool)]> {
        None
    }

    /// The characterization report, if this observer builds one.
    fn char_report(&self) -> Option<&CharReport> {
        None
    }
}

/// The default observer: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl LlcObserver for NullObserver {}

/// Structural-invariant checker for the packed probe mirror.
///
/// Attached under `GR_CHECK=1`, it validates after every hit and fill that
/// the simulator's two views of a set — the packed tag/validity mirror and
/// the authoritative [`Block`] array — agree:
///
/// * the touched way's mirror tag unmaps to the accessed block address,
/// * every validity-mask bit matches the corresponding `Block::valid`,
/// * set occupancy is monotonic: a fill grows it by exactly one until the
///   set is full, a hit never changes it,
/// * policy metadata stays inside the policy's declared
///   [`crate::Policy::state_bits_per_block`] budget,
/// * a dirty block is always valid, and a write hit leaves the block dirty.
///
/// Violations panic with the offending access's sequence number, so a
/// differential-fuzz harness can shrink the trace around it.
#[derive(Debug, Clone)]
pub struct InvariantObserver {
    geo: LlcGeometry,
    /// `2^state_bits`, or `None` when the policy's budget is ≥ 32 bits
    /// (the whole `meta` word is fair game).
    meta_limit: Option<u64>,
    /// Tracked per-set occupancy (fills into free ways only ever grow it).
    occupancy: Vec<u8>,
    checked: u64,
}

impl InvariantObserver {
    /// Creates a checker for an LLC with geometry `cfg` running a policy
    /// that declared `state_bits` metadata bits per block.
    pub fn new(cfg: &LlcConfig, state_bits: u32) -> Self {
        InvariantObserver {
            geo: cfg.geometry(),
            meta_limit: (state_bits < 32).then(|| 1u64 << state_bits),
            occupancy: vec![0; cfg.total_sets()],
            checked: 0,
        }
    }

    /// How many snapshots have been validated.
    pub fn checked(&self) -> u64 {
        self.checked
    }
}

impl LlcObserver for InvariantObserver {
    const WANTS_SET_STATE: bool = true;

    fn observe_set_state(&mut self, info: &AccessInfo, snap: SetSnapshot<'_>) {
        self.checked += 1;
        let ways = snap.blocks.len();
        let way = snap.touched_way;
        let seq = info.seq;

        // Mirror/Block agreement on the touched way: valid, and its mirror
        // tag rebuilds the accessed block address.
        assert!(
            snap.valid_mask >> way & 1 == 1,
            "seq {seq}: touched way {way} not valid in mirror mask {:#x}",
            snap.valid_mask
        );
        assert!(snap.blocks[way].valid, "seq {seq}: touched way {way} invalid in Block array");
        let mirrored = self.geo.unmap(info.bank, info.set_in_bank, snap.tags[way]);
        assert_eq!(
            mirrored, info.block,
            "seq {seq}: mirror tag of way {way} unmaps to {mirrored:#x}, accessed {:#x}",
            info.block
        );

        // Validity-bitmask consistency and metadata budget across the set.
        for (w, b) in snap.blocks.iter().enumerate() {
            assert_eq!(
                snap.valid_mask >> w & 1 == 1,
                b.valid,
                "seq {seq}: validity mask bit {w} disagrees with Block::valid"
            );
            assert!(!b.dirty || b.valid, "seq {seq}: way {w} dirty but invalid");
            if let (true, Some(limit)) = (b.valid, self.meta_limit) {
                assert!(
                    u64::from(b.meta) < limit,
                    "seq {seq}: way {w} meta {:#x} exceeds the declared {limit}-value budget",
                    b.meta
                );
            }
        }

        // Monotonic occupancy: hits preserve it, fills grow it by one until
        // the set is full.
        let set_idx = self.geo.set_index(info.bank, info.set_in_bank);
        let pop = snap.valid_mask.count_ones() as u8;
        let expected = if snap.hit {
            self.occupancy[set_idx]
        } else {
            (self.occupancy[set_idx] + 1).min(ways as u8)
        };
        assert_eq!(
            pop,
            expected,
            "seq {seq}: set {set_idx} occupancy {pop} (expected {expected} after {})",
            if snap.hit { "hit" } else { "fill" }
        );
        self.occupancy[set_idx] = pop;

        // A write that touched the block must leave it dirty.
        if info.write {
            assert!(snap.blocks[way].dirty, "seq {seq}: write left way {way} clean");
        }
    }
}

/// Records every memory-bound transfer — demand-miss fills
/// (`write = false`) and dirty-eviction writebacks (`write = true`) — in
/// issue order, so a DRAM timing model can replay them.
#[derive(Debug, Clone, Default)]
pub struct MemoryLog {
    entries: Vec<(u64, bool)>,
}

impl MemoryLog {
    /// An empty log.
    pub fn new() -> Self {
        MemoryLog::default()
    }

    /// The recorded `(block, is_write)` transfers in issue order.
    pub fn entries(&self) -> &[(u64, bool)] {
        &self.entries
    }

    /// Consumes the log, returning the transfers.
    pub fn into_entries(self) -> Vec<(u64, bool)> {
        self.entries
    }
}

impl LlcObserver for MemoryLog {
    /// Writebacks are logged against the *victim's* address, which must be
    /// rebuilt from its stored tag.
    const NEEDS_VICTIM_ADDR: bool = true;

    #[inline]
    fn observe_bypass(&mut self, info: &AccessInfo) {
        self.entries.push((info.block, info.write));
    }

    #[inline]
    fn observe_evict(&mut self, _info: &AccessInfo, _way: usize, victim_block: u64, dirty: bool) {
        if dirty {
            self.entries.push((victim_block, true));
        }
    }

    #[inline]
    fn observe_fill(&mut self, info: &AccessInfo, _way: usize) {
        self.entries.push((info.block, false));
    }

    fn memory_log(&self) -> Option<&[(u64, bool)]> {
        Some(&self.entries)
    }
}

impl LlcObserver for CharTracker {
    #[inline]
    fn observe_hit(&mut self, info: &AccessInfo, way: usize) {
        self.on_hit(info.class, info.write, info.bank, info.set_in_bank, way);
    }

    #[inline]
    fn observe_evict(&mut self, info: &AccessInfo, victim_way: usize, _block: u64, _dirty: bool) {
        self.on_evict(info.bank, info.set_in_bank, victim_way);
    }

    #[inline]
    fn observe_fill(&mut self, info: &AccessInfo, way: usize) {
        self.on_fill(info.class, info.bank, info.set_in_bank, way);
    }

    fn char_report(&self) -> Option<&CharReport> {
        Some(self.report())
    }
}

/// Composition: both members observe every event, `A` first.
impl<A: LlcObserver, B: LlcObserver> LlcObserver for (A, B) {
    const NEEDS_VICTIM_ADDR: bool = A::NEEDS_VICTIM_ADDR || B::NEEDS_VICTIM_ADDR;
    const WANTS_SET_STATE: bool = A::WANTS_SET_STATE || B::WANTS_SET_STATE;

    #[inline]
    fn observe_set_state(&mut self, info: &AccessInfo, snap: SetSnapshot<'_>) {
        self.0.observe_set_state(info, snap);
        self.1.observe_set_state(info, snap);
    }

    #[inline]
    fn observe_hit(&mut self, info: &AccessInfo, way: usize) {
        self.0.observe_hit(info, way);
        self.1.observe_hit(info, way);
    }

    #[inline]
    fn observe_bypass(&mut self, info: &AccessInfo) {
        self.0.observe_bypass(info);
        self.1.observe_bypass(info);
    }

    #[inline]
    fn observe_evict(
        &mut self,
        info: &AccessInfo,
        victim_way: usize,
        victim_block: u64,
        dirty: bool,
    ) {
        self.0.observe_evict(info, victim_way, victim_block, dirty);
        self.1.observe_evict(info, victim_way, victim_block, dirty);
    }

    #[inline]
    fn observe_fill(&mut self, info: &AccessInfo, way: usize) {
        self.0.observe_fill(info, way);
        self.1.observe_fill(info, way);
    }

    fn memory_log(&self) -> Option<&[(u64, bool)]> {
        self.0.memory_log().or_else(|| self.1.memory_log())
    }

    fn char_report(&self) -> Option<&CharReport> {
        self.0.char_report().or_else(|| self.1.char_report())
    }
}

/// Runtime selection: `None` observes nothing. The victim address is
/// computed whenever `O` would need it (the `None` case wastes the unmap,
/// but runtime-optional observers are only used on instrumented runs).
impl<O: LlcObserver> LlcObserver for Option<O> {
    const NEEDS_VICTIM_ADDR: bool = O::NEEDS_VICTIM_ADDR;
    const WANTS_SET_STATE: bool = O::WANTS_SET_STATE;

    #[inline]
    fn observe_set_state(&mut self, info: &AccessInfo, snap: SetSnapshot<'_>) {
        if let Some(o) = self {
            o.observe_set_state(info, snap);
        }
    }

    #[inline]
    fn observe_hit(&mut self, info: &AccessInfo, way: usize) {
        if let Some(o) = self {
            o.observe_hit(info, way);
        }
    }

    #[inline]
    fn observe_bypass(&mut self, info: &AccessInfo) {
        if let Some(o) = self {
            o.observe_bypass(info);
        }
    }

    #[inline]
    fn observe_evict(
        &mut self,
        info: &AccessInfo,
        victim_way: usize,
        victim_block: u64,
        dirty: bool,
    ) {
        if let Some(o) = self {
            o.observe_evict(info, victim_way, victim_block, dirty);
        }
    }

    #[inline]
    fn observe_fill(&mut self, info: &AccessInfo, way: usize) {
        if let Some(o) = self {
            o.observe_fill(info, way);
        }
    }

    fn memory_log(&self) -> Option<&[(u64, bool)]> {
        self.as_ref().and_then(LlcObserver::memory_log)
    }

    fn char_report(&self) -> Option<&CharReport> {
        self.as_ref().and_then(LlcObserver::char_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtrace::{PolicyClass, StreamId};

    fn info(block: u64, write: bool) -> AccessInfo {
        AccessInfo {
            seq: 0,
            block,
            bank: 0,
            set_in_bank: 0,
            stream: StreamId::Texture,
            class: PolicyClass::Tex,
            write,
            is_sample: false,
            next_use: u64::MAX,
        }
    }

    #[test]
    fn null_observer_reports_nothing() {
        let o = NullObserver;
        assert!(o.memory_log().is_none());
        assert!(o.char_report().is_none());
        const { assert!(!NullObserver::NEEDS_VICTIM_ADDR) };
    }

    #[test]
    fn memory_log_orders_writeback_before_fill() {
        let mut log = MemoryLog::new();
        log.observe_evict(&info(5, false), 0, 99, true);
        log.observe_fill(&info(5, false), 0);
        assert_eq!(log.entries(), &[(99, true), (5, false)]);
    }

    #[test]
    fn memory_log_skips_clean_evictions() {
        let mut log = MemoryLog::new();
        log.observe_evict(&info(5, false), 0, 99, false);
        assert!(log.entries().is_empty());
    }

    #[test]
    fn memory_log_records_bypasses_with_write_flag() {
        let mut log = MemoryLog::new();
        log.observe_bypass(&info(7, true));
        log.observe_bypass(&info(8, false));
        assert_eq!(log.into_entries(), vec![(7, true), (8, false)]);
    }

    #[test]
    fn tuple_composes_flags_and_reports() {
        type Combo = (Option<CharTracker>, Option<MemoryLog>);
        const { assert!(Combo::NEEDS_VICTIM_ADDR) };
        const { assert!(!<(NullObserver, NullObserver)>::NEEDS_VICTIM_ADDR) };

        let mut combo: Combo = (None, Some(MemoryLog::new()));
        combo.observe_fill(&info(3, false), 0);
        assert_eq!(combo.memory_log(), Some(&[(3u64, false)][..]));
        assert!(combo.char_report().is_none());
    }

    #[test]
    fn optional_none_observes_nothing() {
        let mut o: Option<MemoryLog> = None;
        o.observe_fill(&info(1, false), 0);
        assert!(o.memory_log().is_none());
    }
}
