//! The replacement-policy interface the LLC simulator delegates to.
//!
//! Policies own a per-block metadata word ([`Block::meta`]) — the model of
//! the replacement state bits a hardware implementation would keep — plus
//! whatever per-bank counters they need internally. The LLC drives the
//! policy through fill / hit / victim / evict callbacks and tells it whether
//! the target set is one of the GSPC sample sets.

use grtrace::{PolicyClass, StreamId};

/// Everything a policy may inspect about the access being serviced.
#[derive(Debug, Clone, Copy)]
pub struct AccessInfo {
    /// Position of the access in the trace (0-based).
    pub seq: u64,
    /// Block address.
    pub block: u64,
    /// Bank index.
    pub bank: usize,
    /// Set index within the bank.
    pub set_in_bank: usize,
    /// Graphics stream of the access.
    pub stream: StreamId,
    /// Four-way policy class of the stream.
    pub class: PolicyClass,
    /// `true` for a store.
    pub write: bool,
    /// `true` when the target set is an SRRIP-managed sample set.
    pub is_sample: bool,
    /// Trace position of the *next* access to this block, or `u64::MAX` if
    /// it is never accessed again. Populated by
    /// [`crate::optgen::annotate_next_use`]; `u64::MAX` when no annotation
    /// pass ran. Only Belady's optimal policy consults this.
    pub next_use: u64,
}

/// One way of an LLC set, as seen by a policy.
///
/// Deliberately 16 bytes: victim scans walk every way of a set, so the
/// whole 16-way slice spans four cache lines. The resident block's *tag*
/// is not here — no policy consults it, and the simulator keeps tags in
/// its packed probe mirror (see [`crate::Llc`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Block {
    /// `true` once the way holds a block.
    pub valid: bool,
    /// `true` if the block has been written since the fill.
    pub dirty: bool,
    /// Policy-owned replacement state bits.
    pub meta: u32,
    /// Next-use annotation of the most recent access to this block
    /// (`u64::MAX` = never reused). Maintained by the LLC.
    pub next_use: u64,
}

/// What a policy reports about a fill, for instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillInfo {
    /// The re-reference prediction value the block was inserted with, for
    /// policies that have one (Figure 8 instrumentation).
    pub rrpv: Option<u8>,
    /// `true` when the block was inserted at the policy's *distant* RRPV
    /// (predicted to have no near-future reuse).
    pub distant: bool,
}

impl FillInfo {
    /// Reports an insertion at RRPV `rrpv` out of a maximum of `max`.
    pub fn rrip(rrpv: u8, max: u8) -> Self {
        FillInfo { rrpv: Some(rrpv), distant: rrpv == max }
    }
}

/// An LLC replacement policy.
///
/// The LLC calls, in order, per access:
///
/// 1. [`Policy::should_bypass`] on a miss — if `true` the access goes
///    around the LLC (e.g. uncached displayable color),
/// 2. on a hit: [`Policy::on_hit`],
/// 3. on a non-bypassed miss with a full set: [`Policy::choose_victim`]
///    then [`Policy::on_evict`],
/// 4. on every non-bypassed miss: [`Policy::on_fill`] after the block and
///    tag have been installed.
///
/// Implementations must keep all their state in [`Block::meta`] and their
/// own fields; the LLC never interprets `meta`. Policies are `Send` so the
/// experiment runner can fan independent LLC instances across threads.
///
/// `name` returns a borrowed string so the hot experiment loops never
/// allocate; policies with parameterized names build the string once at
/// construction.
pub trait Policy: Send {
    /// Human-readable policy name, e.g. `"GSPC"` or `"DRRIP-2"`.
    fn name(&self) -> &str;

    /// Replacement state bits this policy stores per LLC block (used by the
    /// hardware-overhead accounting of Section 4).
    fn state_bits_per_block(&self) -> u32;

    /// `true` if this access should bypass the LLC on a miss.
    fn should_bypass(&mut self, _a: &AccessInfo) -> bool {
        false
    }

    /// The access hit `set[way]`.
    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize);

    /// Every way of `set` is valid; choose one to evict. Implementations may
    /// mutate `meta` across the set (e.g. RRIP aging).
    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize;

    /// `set[way]` is about to be overwritten (called only for valid ways).
    fn on_evict(&mut self, _a: &AccessInfo, _set: &mut [Block], _way: usize) {}

    /// The missing block has been installed in `set[way]`; initialize its
    /// replacement state and report the insertion RRPV if the policy has one.
    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo;
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn state_bits_per_block(&self) -> u32 {
        (**self).state_bits_per_block()
    }
    fn should_bypass(&mut self, a: &AccessInfo) -> bool {
        (**self).should_bypass(a)
    }
    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        (**self).on_hit(a, set, way)
    }
    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        (**self).choose_victim(a, set)
    }
    fn on_evict(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        (**self).on_evict(a, set, way)
    }
    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        (**self).on_fill(a, set, way)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal FIFO-ish policy used to exercise the trait object path.
    struct Fifo {
        counter: u32,
    }

    impl Policy for Fifo {
        fn name(&self) -> &str {
            "FIFO"
        }
        fn state_bits_per_block(&self) -> u32 {
            32
        }
        fn on_hit(&mut self, _a: &AccessInfo, _set: &mut [Block], _way: usize) {}
        fn choose_victim(&mut self, _a: &AccessInfo, set: &mut [Block]) -> usize {
            set.iter().enumerate().min_by_key(|(_, b)| b.meta).map(|(i, _)| i).unwrap()
        }
        fn on_fill(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
            set[way].meta = self.counter;
            self.counter += 1;
            FillInfo::default()
        }
    }

    #[test]
    fn boxed_policy_delegates() {
        let mut p: Box<dyn Policy> = Box::new(Fifo { counter: 0 });
        assert_eq!(p.name(), "FIFO");
        assert_eq!(p.state_bits_per_block(), 32);
        let a = AccessInfo {
            seq: 0,
            block: 0,
            bank: 0,
            set_in_bank: 0,
            stream: StreamId::Z,
            class: PolicyClass::Z,
            write: false,
            is_sample: false,
            next_use: u64::MAX,
        };
        let mut set = vec![Block::default(); 2];
        p.on_fill(&a, &mut set, 0);
        p.on_fill(&a, &mut set, 1);
        set[0].valid = true;
        set[1].valid = true;
        assert_eq!(p.choose_victim(&a, &mut set), 0);
        assert!(!p.should_bypass(&a));
    }
}
