use grtrace::BLOCK_BYTES;

/// Geometry of a simple set-associative cache.
///
/// # Example
///
/// ```
/// use grcache::CacheConfig;
///
/// let cfg = CacheConfig::kb(32, 32); // the paper's Z cache: 32 KB, 32-way
/// assert_eq!(cfg.sets(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a configuration from a capacity in kilobytes.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is zero or not a power of two.
    pub fn kb(kilobytes: u64, ways: usize) -> Self {
        let cfg = CacheConfig { size_bytes: kilobytes * 1024, ways };
        assert!(cfg.sets() > 0, "cache must have at least one set");
        assert!(cfg.sets().is_power_of_two(), "set count must be a power of two");
        cfg
    }

    /// Number of sets implied by the capacity, associativity, and 64 B blocks.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (BLOCK_BYTES * self.ways as u64)) as usize
    }

    /// Number of blocks the cache holds.
    pub fn blocks(&self) -> usize {
        self.sets() * self.ways
    }

    /// Number of index bits (`log2(sets)`); the set count must be a power
    /// of two (enforced by [`CacheConfig::kb`]).
    #[inline]
    pub fn set_bits(&self) -> u32 {
        self.sets().trailing_zeros()
    }

    /// Decomposes a block address into `(set, tag)`.
    ///
    /// The render caches index by the low block bits directly — unlike the
    /// LLC ([`LlcGeometry::map`]), there is no bank dimension and no XOR
    /// index hash, so the decomposition is a mask and a shift.
    #[inline]
    pub fn map(&self, block: u64) -> (usize, u64) {
        let set = (block & (self.sets() as u64 - 1)) as usize;
        (set, block >> self.set_bits())
    }

    /// Rebuilds the block address from a `(set, tag)` pair produced by
    /// [`CacheConfig::map`] — the inverse the writeback path needs to
    /// reconstruct a victim's address from its stored tag.
    #[inline]
    pub fn unmap(&self, set: usize, tag: u64) -> u64 {
        (tag << self.set_bits()) | set as u64
    }
}

/// Geometry of the banked last-level cache.
///
/// The paper's baseline is an 8 MB 16-way non-inclusive/non-exclusive LLC
/// with 64 B blocks, organized as four 2 MB banks; all GSPC bookkeeping
/// counters are per-bank. Sixteen sets in every 1024 are dedicated *sample
/// sets* that always run SRRIP and feed the reuse-probability counters
/// (Section 3). Samples are identified by a simple Boolean function on the
/// index bits: here, the low [`LlcConfig::sample_period`] bits being zero
/// (one sample per 64 sets = 16 per 1024).
///
/// # Example
///
/// ```
/// use grcache::LlcConfig;
///
/// let llc = LlcConfig::mb(8);
/// assert_eq!(llc.sets_per_bank(), 2048);
/// assert_eq!(llc.total_sets(), 8192);
/// assert!(llc.is_sample_set(0));
/// assert!(!llc.is_sample_set(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Number of banks (power of two).
    pub banks: usize,
    /// A set whose index is a multiple of this period is a sample set.
    pub sample_period: usize,
}

impl LlcConfig {
    /// The paper's LLC geometry for a capacity in megabytes: 16-way, four
    /// banks, 16 sample sets per 1024 sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly into power-of-two sets.
    pub fn mb(megabytes: u64) -> Self {
        let cfg = LlcConfig {
            size_bytes: megabytes * 1024 * 1024,
            ways: 16,
            banks: 4,
            sample_period: 64,
        };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(self.banks.is_power_of_two(), "bank count must be a power of two");
        assert!(self.sets_per_bank() > 0, "LLC must have at least one set per bank");
        assert!(self.sets_per_bank().is_power_of_two(), "sets per bank must be a power of two");
        assert!(self.sample_period.is_power_of_two(), "sample period must be a power of two");
    }

    /// Number of sets in each bank.
    pub fn sets_per_bank(&self) -> usize {
        (self.size_bytes / (BLOCK_BYTES * (self.ways * self.banks) as u64)) as usize
    }

    /// Number of sets across all banks.
    pub fn total_sets(&self) -> usize {
        self.sets_per_bank() * self.banks
    }

    /// Number of blocks the LLC holds.
    pub fn total_blocks(&self) -> usize {
        self.total_sets() * self.ways
    }

    /// `true` if `set_in_bank` is one of the SRRIP-managed sample sets.
    #[inline]
    pub fn is_sample_set(&self, set_in_bank: usize) -> bool {
        set_in_bank & (self.sample_period - 1) == 0
    }

    /// The precomputed address-mapping constants. The simulator derives
    /// this once per LLC instance; computing `sets_per_bank` involves a
    /// 64-bit division, which must stay out of the per-access path.
    pub fn geometry(&self) -> LlcGeometry {
        let sets_per_bank = self.sets_per_bank();
        LlcGeometry {
            bank_mask: self.banks as u64 - 1,
            set_mask: sets_per_bank as u64 - 1,
            bank_bits: self.banks.trailing_zeros(),
            set_bits: sets_per_bank.trailing_zeros(),
            sets_per_bank,
            ways: self.ways,
        }
    }

    /// Decomposes a block address into `(bank, set_in_bank, tag)`.
    ///
    /// Convenience wrapper over [`LlcGeometry::map`]; hot loops should
    /// derive the geometry once with [`LlcConfig::geometry`] instead.
    #[inline]
    pub fn map(&self, block: u64) -> (usize, usize, u64) {
        self.geometry().map(block)
    }

    /// Rebuilds the block address from a `(bank, set_in_bank, tag)` triple
    /// produced by [`LlcConfig::map`].
    ///
    /// Convenience wrapper over [`LlcGeometry::unmap`].
    #[inline]
    pub fn unmap(&self, bank: usize, set_in_bank: usize, tag: u64) -> u64 {
        self.geometry().unmap(bank, set_in_bank, tag)
    }
}

/// Address-mapping constants derived from an [`LlcConfig`], precomputed so
/// the per-access path is pure shifts and masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcGeometry {
    bank_mask: u64,
    set_mask: u64,
    bank_bits: u32,
    set_bits: u32,
    sets_per_bank: usize,
    ways: usize,
}

impl LlcGeometry {
    /// Decomposes a block address into `(bank, set_in_bank, tag)`.
    ///
    /// The set index XOR-folds the tag bits into the low index bits
    /// (XOR-based index hashing, as commercial LLCs use) so that the
    /// page-aligned, strided layouts of graphics surfaces do not alias a
    /// few hot set residues — which would starve the set-sampling
    /// machinery (dueling leaders, GSPC sample sets) of representative
    /// traffic. The mapping stays invertible: `(bank, set, tag)` uniquely
    /// identifies the block.
    #[inline]
    pub fn map(&self, block: u64) -> (usize, usize, u64) {
        let bank = (block & self.bank_mask) as usize;
        let tag = block >> (self.bank_bits + self.set_bits);
        let mut set = (block >> self.bank_bits) & self.set_mask;
        // With one set per bank there are no index bits to fold into; the
        // set is always 0.
        if self.set_bits > 0 {
            set ^= self.fold_tag(tag);
        }
        (bank, set as usize, tag)
    }

    /// XOR of every `set_bits`-wide chunk of `tag`, computed as a
    /// logarithmic shift-XOR tree: after `fold ^= fold >> s` the low chunk
    /// holds the XOR of chunks 0 and 1, after the doubled shift chunks
    /// 0–3, and so on until one more doubling would clear the word. The
    /// tree is branchless per step and its trip count depends only on the
    /// geometry — unlike a `while fold != 0` walk, whose data-dependent
    /// exit mispredicts once per access. Same value, no mispredicts.
    ///
    /// Requires `set_bits > 0`.
    #[inline]
    fn fold_tag(&self, tag: u64) -> u64 {
        let mut fold = tag;
        let mut shift = self.set_bits;
        while shift < 64 {
            fold ^= fold >> shift;
            shift <<= 1;
        }
        fold & self.set_mask
    }

    /// Rebuilds the block address from a `(bank, set_in_bank, tag)` triple
    /// produced by [`LlcGeometry::map`] — the inverse the writeback path
    /// needs to reconstruct a victim's address from its stored tag.
    ///
    /// The XOR fold is an involution on the low index bits: folding the
    /// tag into the hashed set index recovers the original one.
    #[inline]
    pub fn unmap(&self, bank: usize, set_in_bank: usize, tag: u64) -> u64 {
        let mut low = set_in_bank as u64;
        if self.set_bits > 0 {
            low ^= self.fold_tag(tag);
        }
        (tag << (self.bank_bits + self.set_bits)) | (low << self.bank_bits) | bank as u64
    }

    /// Flat index of `(bank, set_in_bank)` across all banks — the index
    /// into the simulator's per-set arrays (validity and dirty bitmasks).
    #[inline]
    pub fn set_index(&self, bank: usize, set_in_bank: usize) -> usize {
        bank * self.sets_per_bank + set_in_bank
    }

    /// Index of the first block of `(bank, set_in_bank)` in the flat
    /// block array.
    #[inline]
    pub fn set_base(&self, bank: usize, set_in_bank: usize) -> usize {
        self.set_index(bank, set_in_bank) * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_render_cache_geometries() {
        assert_eq!(CacheConfig::kb(1, 16).sets(), 1); // vertex index
        assert_eq!(CacheConfig::kb(16, 128).sets(), 2); // vertex
        assert_eq!(CacheConfig::kb(12, 24).sets(), 8); // HiZ
        assert_eq!(CacheConfig::kb(16, 16).sets(), 16); // stencil
        assert_eq!(CacheConfig::kb(24, 24).sets(), 16); // render target
        assert_eq!(CacheConfig::kb(32, 32).sets(), 16); // Z
        assert_eq!(CacheConfig::kb(384, 48).sets(), 128); // texture L3
    }

    /// `CacheConfig::unmap` inverts `CacheConfig::map` on every paper
    /// render-cache geometry, and the decomposition is injective.
    #[test]
    fn cache_config_unmap_inverts_map() {
        use std::collections::HashSet;
        let geometries = [
            CacheConfig::kb(1, 16),
            CacheConfig::kb(16, 128),
            CacheConfig::kb(12, 24),
            CacheConfig::kb(24, 24),
            CacheConfig::kb(32, 32),
            CacheConfig::kb(384, 48),
            CacheConfig { size_bytes: 4 * 64, ways: 2 }, // 2 sets x 2 ways
        ];
        for cfg in geometries {
            let mut seen = HashSet::new();
            let mut block = 0x9E3779B97F4A7C15u64;
            for i in 0..50_000u64 {
                // A mix of dense low addresses and xorshift-spread ones.
                block ^= block << 13;
                block ^= block >> 7;
                block ^= block << 17;
                for b in [i, block >> 16] {
                    let (set, tag) = cfg.map(b);
                    assert!(set < cfg.sets(), "set out of range for block {b}");
                    assert_eq!(cfg.unmap(set, tag), b, "round trip failed for block {b}");
                    seen.insert((set, tag));
                }
            }
            assert!(seen.len() > 50_000, "map collapsed distinct blocks");
        }
    }

    #[test]
    fn llc_8mb_geometry() {
        let llc = LlcConfig::mb(8);
        assert_eq!(llc.total_blocks() as u64 * 64, 8 * 1024 * 1024);
        assert_eq!(llc.sets_per_bank(), 2048);
    }

    #[test]
    fn llc_16mb_geometry() {
        let llc = LlcConfig::mb(16);
        assert_eq!(llc.sets_per_bank(), 4096);
        assert_eq!(llc.total_sets(), 16384);
    }

    #[test]
    fn sample_sets_are_16_per_1024() {
        let llc = LlcConfig::mb(8);
        let samples = (0..1024).filter(|&s| llc.is_sample_set(s)).count();
        assert_eq!(samples, 16);
    }

    #[test]
    fn map_roundtrip_is_unique() {
        let llc = LlcConfig::mb(8);
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for block in 0..100_000u64 {
            let key = llc.map(block);
            assert!(seen.insert(key), "collision for block {block}");
        }
    }

    #[test]
    fn unmap_inverts_map() {
        for mb in [8, 16] {
            let llc = LlcConfig::mb(mb);
            for block in (0..1_000_000u64).step_by(37) {
                let (bank, set, tag) = llc.map(block);
                assert_eq!(llc.unmap(bank, set, tag), block, "block {block}");
            }
        }
        // A tiny non-paper geometry exercises short fold chains too.
        let small = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        for block in 0..10_000u64 {
            let (bank, set, tag) = small.map(block);
            assert_eq!(small.unmap(bank, set, tag), block, "block {block}");
        }
    }

    #[test]
    fn conflicting_blocks_have_distinct_tags() {
        let llc = LlcConfig::mb(8);
        let (b0, s0, t0) = llc.map(0);
        // Find another block hashing to the same (bank, set).
        let other = (1..1_000_000u64)
            .find(|&b| {
                let (bank, set, _) = llc.map(b);
                (bank, set) == (b0, s0)
            })
            .expect("a conflicting block exists");
        let (_, _, t1) = llc.map(other);
        assert_ne!(t0, t1);
    }

    #[test]
    fn set_hash_spreads_aligned_strides() {
        // Page-aligned strided traffic (the pattern graphics surfaces
        // produce) must not concentrate on a few set residues.
        let llc = LlcConfig::mb(8);
        let mut counts = vec![0u32; 64];
        for i in 0..(64 * 256u64) {
            let (_, set, _) = llc.map(i * 256); // 16 KB stride
            counts[set % 64] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 3 * min.max(1), "residue imbalance: min={min} max={max}");
    }
}
