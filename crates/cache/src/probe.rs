//! The vectorized tag probe over the packed LLC mirror.
//!
//! PR 3 laid the probe mirror out for SIMD — one `u64` tag word per way,
//! one validity bitmask per set — but compared it scalar-wise. This module
//! supplies the explicit-width lane compares: an AVX2 path (four tag words
//! per compare, selected by runtime feature detection), an SSE2 path (two
//! tag words per compare, unconditionally available on `x86_64`), and a
//! manually unrolled 4×`u64` portable fallback for every other target. The
//! scalar OR-folded loop survives as [`ProbeKind::Scalar`] so `GR_SIMD=0`
//! can select the pre-vectorization replay core at runtime for A/B
//! benchmarking and differential testing.
//!
//! Every path computes the same function: bit `w` of the returned mask is
//! set iff `tags[w] == tag`. Callers AND the result with the set's validity
//! mask; the probe itself never consults it, which keeps the compare a pure
//! streaming read of the mirror.
//!
//! # `GR_SIMD`
//!
//! * `GR_SIMD=0` — the scalar per-access loop (probe *and* the unbatched
//!   retire loop; see [`crate::Llc::run_source`]).
//! * `GR_SIMD=portable` — force the 4×`u64` portable lanes.
//! * `GR_SIMD=sse2` — force the 128-bit path (`x86_64` only).
//! * unset / `GR_SIMD=1` — the widest available path (AVX2 where detected).
//!
//! The variable is read once per process and cached; tests that need both
//! paths in one process select a kind programmatically via
//! [`crate::Llc::set_probe_kind`].

use std::sync::OnceLock;

/// Which compare implementation services the probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// The scalar OR-folded loop — the pre-vectorization replay core,
    /// selected by `GR_SIMD=0`. This kind also disables the batched
    /// front-end in [`crate::Llc::run_source`].
    Scalar,
    /// Manually unrolled 4×`u64` lane compare — the portable fallback.
    Portable,
    /// 128-bit compares via `core::arch::x86_64` (baseline on `x86_64`,
    /// no detection needed).
    #[cfg(target_arch = "x86_64")]
    Sse2,
    /// 256-bit compares; requires runtime AVX2 detection.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl ProbeKind {
    /// The widest kind this host supports, ignoring `GR_SIMD`.
    pub fn best_available() -> ProbeKind {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                ProbeKind::Avx2
            } else {
                ProbeKind::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            ProbeKind::Portable
        }
    }

    /// `true` when this kind can run on the current host.
    pub fn is_available(self) -> bool {
        match self {
            #[cfg(target_arch = "x86_64")]
            ProbeKind::Avx2 => is_x86_feature_detected!("avx2"),
            _ => true,
        }
    }

    /// Every kind the current host can run, scalar first.
    pub fn all_available() -> Vec<ProbeKind> {
        let mut kinds = vec![ProbeKind::Scalar, ProbeKind::Portable];
        #[cfg(target_arch = "x86_64")]
        {
            kinds.push(ProbeKind::Sse2);
            if is_x86_feature_detected!("avx2") {
                kinds.push(ProbeKind::Avx2);
            }
        }
        kinds
    }

    /// `true` when this kind engages the batched front-end (everything but
    /// [`ProbeKind::Scalar`]).
    pub fn is_batched(self) -> bool {
        self != ProbeKind::Scalar
    }

    /// The process-wide default: `GR_SIMD` consulted once, then cached.
    pub fn from_env() -> ProbeKind {
        static DEFAULT: OnceLock<ProbeKind> = OnceLock::new();
        *DEFAULT.get_or_init(|| Self::parse_env(std::env::var("GR_SIMD").ok().as_deref()))
    }

    /// The kind a given `GR_SIMD` value selects (un-cached; [`from_env`]
    /// is the cached front end). Unknown spellings select the default.
    ///
    /// [`from_env`]: ProbeKind::from_env
    pub fn parse_env(value: Option<&str>) -> ProbeKind {
        match value {
            Some("0") => ProbeKind::Scalar,
            Some("portable") => ProbeKind::Portable,
            #[cfg(target_arch = "x86_64")]
            Some("sse2") => ProbeKind::Sse2,
            _ => ProbeKind::best_available(),
        }
    }
}

/// Compares every tag word of one set against `tag`: bit `w` of the result
/// is set iff `tags[w] == tag`. The caller ANDs with the validity mask.
#[inline]
pub fn probe_set(kind: ProbeKind, tags: &[u64], tag: u64) -> u64 {
    match kind {
        ProbeKind::Scalar => probe_scalar(tags, tag),
        ProbeKind::Portable => probe_portable(tags, tag),
        #[cfg(target_arch = "x86_64")]
        ProbeKind::Sse2 => probe_sse2(tags, tag),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` is only constructed after runtime detection
        // (`best_available` / `is_available` / `set_probe_kind`'s assert).
        ProbeKind::Avx2 => unsafe { probe_avx2(tags, tag) },
    }
}

/// The scalar OR-folded compare — the exact loop the pre-vectorization
/// replay core ran, kept as the `GR_SIMD=0` reference path.
#[inline]
pub fn probe_scalar(tags: &[u64], tag: u64) -> u64 {
    let mut eq = 0u64;
    for (i, &t) in tags.iter().enumerate() {
        eq |= u64::from(t == tag) << i;
    }
    eq
}

/// The portable lane compare: four `u64` equality bits per unrolled
/// iteration, independent so the compiler can schedule them as one wide
/// compare on any target.
#[inline]
pub fn probe_portable(tags: &[u64], tag: u64) -> u64 {
    let mut eq = 0u64;
    let mut i = 0;
    while i + 4 <= tags.len() {
        let e0 = u64::from(tags[i] == tag);
        let e1 = u64::from(tags[i + 1] == tag);
        let e2 = u64::from(tags[i + 2] == tag);
        let e3 = u64::from(tags[i + 3] == tag);
        eq |= (e0 | (e1 << 1) | (e2 << 2) | (e3 << 3)) << i;
        i += 4;
    }
    while i < tags.len() {
        eq |= u64::from(tags[i] == tag) << i;
        i += 1;
    }
    eq
}

/// 128-bit lane compare. SSE2 is part of the `x86_64` baseline, so this
/// needs no runtime detection and inlines into the caller.
///
/// SSE2 has no 64-bit integer compare; a `u64` lane is equal iff both of
/// its 32-bit halves compare equal, so the 32-bit equality mask is ANDed
/// with its within-lane swap before extracting one bit per 64-bit lane.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn probe_sse2(tags: &[u64], tag: u64) -> u64 {
    use core::arch::x86_64::*;
    // SAFETY: SSE2 is statically enabled on every x86_64 target; the
    // unaligned loads stay within `tags` by the loop bound.
    unsafe {
        let needle = _mm_set1_epi64x(tag as i64);
        let mut eq = 0u64;
        let mut i = 0;
        while i + 2 <= tags.len() {
            let lanes = _mm_loadu_si128(tags.as_ptr().add(i).cast());
            let eq32 = _mm_cmpeq_epi32(lanes, needle);
            let swapped = _mm_shuffle_epi32(eq32, 0b10_11_00_01);
            let eq64 = _mm_and_si128(eq32, swapped);
            eq |= (_mm_movemask_pd(_mm_castsi128_pd(eq64)) as u64) << i;
            i += 2;
        }
        if i < tags.len() {
            eq |= u64::from(tags[i] == tag) << i;
        }
        eq
    }
}

/// 256-bit lane compare: four tag words per `VPCMPEQQ`, one bit per lane
/// via the double-precision movemask.
///
/// # Safety
///
/// The caller must have verified AVX2 support (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn probe_avx2(tags: &[u64], tag: u64) -> u64 {
    use core::arch::x86_64::*;
    let needle = _mm256_set1_epi64x(tag as i64);
    let mut eq = 0u64;
    let mut i = 0;
    while i + 4 <= tags.len() {
        let lanes = _mm256_loadu_si256(tags.as_ptr().add(i).cast());
        let hits = _mm256_cmpeq_epi64(lanes, needle);
        eq |= (_mm256_movemask_pd(_mm256_castsi256_pd(hits)) as u64) << i;
        i += 4;
    }
    while i < tags.len() {
        eq |= u64::from(tags[i] == tag) << i;
        i += 1;
    }
    eq
}

/// One slot of the batched front-end: the mapped coordinates of an access
/// plus the probe's output. The map phase fills the coordinates, the probe
/// phase fills `hit_mask` (already ANDed with `vmask`), and the retire
/// phase consumes the slot in arrival order — see
/// [`crate::Llc::run_source`] for the ordering argument.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Slot {
    /// Block address of the access.
    pub block: u64,
    /// Tag to match against the mirror.
    pub tag: u64,
    /// Belady next-use annotation (`u64::MAX` when unannotated).
    pub next_use: u64,
    /// Validity bitmask of the set, as read during the map phase.
    pub vmask: u64,
    /// Way-match mask: probe result ANDed with `vmask`.
    pub hit_mask: u64,
    /// Bank index.
    pub bank: u32,
    /// Set index within the bank.
    pub set_in_bank: u32,
    /// Flat set index across banks.
    pub set_idx: u32,
    /// Index of the set's first tag word in the flat mirror.
    pub base: u32,
    /// Graphics stream of the access.
    pub stream: grtrace::StreamId,
    /// `true` for a store.
    pub write: bool,
}

impl Slot {
    /// A placeholder slot for initializing batch buffers; every field is
    /// overwritten by the map phase before use.
    pub(crate) fn placeholder() -> Slot {
        Slot {
            block: 0,
            tag: 0,
            next_use: u64::MAX,
            vmask: 0,
            hit_mask: 0,
            bank: 0,
            set_in_bank: 0,
            set_idx: 0,
            base: 0,
            stream: grtrace::StreamId::Texture,
            write: false,
        }
    }
}

/// Probes every slot of a batch against the mirror, writing
/// `slot.hit_mask = matches & slot.vmask`. The AVX2 variant runs the whole
/// batch inside one `#[target_feature]` function so the per-call dispatch
/// cost is amortized over the batch.
#[inline]
pub(crate) fn probe_batch(kind: ProbeKind, mirror: &[u64], ways: usize, slots: &mut [Slot]) {
    match kind {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` is only constructed after runtime detection.
        ProbeKind::Avx2 => unsafe { probe_batch_avx2(mirror, ways, slots) },
        _ => {
            for s in slots {
                let base = s.base as usize;
                s.hit_mask = probe_set(kind, &mirror[base..base + ways], s.tag) & s.vmask;
            }
        }
    }
}

/// Batched AVX2 probe; the 16-way geometry (the paper's only associativity)
/// takes a fixed four-compare body.
///
/// # Safety
///
/// The caller must have verified AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn probe_batch_avx2(mirror: &[u64], ways: usize, slots: &mut [Slot]) {
    use core::arch::x86_64::*;
    if ways == 16 {
        for s in slots {
            let base = s.base as usize;
            debug_assert!(base + 16 <= mirror.len());
            let p = mirror.as_ptr().add(base);
            let needle = _mm256_set1_epi64x(s.tag as i64);
            let m0 = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(
                _mm256_loadu_si256(p.cast()),
                needle,
            ))) as u64;
            let m1 = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(
                _mm256_loadu_si256(p.add(4).cast()),
                needle,
            ))) as u64;
            let m2 = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(
                _mm256_loadu_si256(p.add(8).cast()),
                needle,
            ))) as u64;
            let m3 = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(
                _mm256_loadu_si256(p.add(12).cast()),
                needle,
            ))) as u64;
            s.hit_mask = (m0 | (m1 << 4) | (m2 << 8) | (m3 << 12)) & s.vmask;
        }
    } else {
        for s in slots {
            let base = s.base as usize;
            s.hit_mask = probe_avx2(&mirror[base..base + ways], s.tag) & s.vmask;
        }
    }
}

/// Hints the prefetcher at the cache line holding `p` (no-op off `x86_64`).
/// The map phase issues these for the tag words, validity word, and policy
/// blocks the retire phase will touch, so the dependent loads of a whole
/// batch overlap instead of serializing.
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it cannot fault even on invalid addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for randomized mirrors.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// Builds a randomized mirror of `sets` sets with `ways` ways: small
    /// tag values (to force repeats/matches) and partially-valid sets.
    fn random_mirror(rng: &mut Rng, sets: usize, ways: usize) -> (Vec<u64>, Vec<u64>) {
        let mut tags = Vec::with_capacity(sets * ways);
        let mut valid = Vec::with_capacity(sets);
        for _ in 0..sets {
            for _ in 0..ways {
                tags.push(rng.next() % 7);
            }
            let vmask = if ways == 64 { rng.next() } else { rng.next() & ((1u64 << ways) - 1) };
            valid.push(vmask);
        }
        (tags, valid)
    }

    /// Every available kind computes the same match mask as the scalar
    /// reference on randomized, partially-valid mirrors — including
    /// non-paper geometries (`ways != 16`) that exercise the unrolled
    /// remainder lanes.
    #[test]
    fn all_kinds_match_scalar_on_random_mirrors() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for ways in [1usize, 2, 3, 4, 5, 7, 8, 12, 15, 16, 24, 33, 64] {
            let (tags, valid) = random_mirror(&mut rng, 32, ways);
            for (set, &vmask) in valid.iter().enumerate() {
                let base = set * ways;
                let set_tags = &tags[base..base + ways];
                let needle = rng.next() % 7;
                let want = probe_scalar(set_tags, needle) & vmask;
                for kind in ProbeKind::all_available() {
                    let got = probe_set(kind, set_tags, needle) & vmask;
                    assert_eq!(
                        got, want,
                        "{kind:?} diverged: ways={ways} set={set} needle={needle}"
                    );
                }
            }
        }
    }

    /// The batched probe agrees with per-set probes for every kind,
    /// including the specialized 16-way AVX2 body and partially-valid sets.
    #[test]
    fn batch_probe_matches_single_probes() {
        let mut rng = Rng(0x243F6A8885A308D3);
        for ways in [4usize, 13, 16, 20] {
            let sets = 64;
            let (tags, valid) = random_mirror(&mut rng, sets, ways);
            let mut slots: Vec<Slot> = (0..48)
                .map(|_| {
                    let set = (rng.next() % sets as u64) as usize;
                    let mut s = Slot::placeholder();
                    s.tag = rng.next() % 7;
                    s.vmask = valid[set];
                    s.set_idx = set as u32;
                    s.base = (set * ways) as u32;
                    s
                })
                .collect();
            for kind in ProbeKind::all_available() {
                for s in &mut slots {
                    s.hit_mask = u64::MAX; // must be overwritten
                }
                probe_batch(kind, &tags, ways, &mut slots);
                for s in &slots {
                    let base = s.base as usize;
                    let want = probe_scalar(&tags[base..base + ways], s.tag) & s.vmask;
                    assert_eq!(s.hit_mask, want, "{kind:?} batch diverged at base {base}");
                }
            }
        }
    }

    /// Full-width 64-way sets exercise every bit of the match mask.
    #[test]
    fn full_width_mask_has_no_truncation() {
        let tags: Vec<u64> = (0..64).map(|i| u64::from(i % 2 == 0)).collect();
        for kind in ProbeKind::all_available() {
            let m = probe_set(kind, &tags, 1);
            assert_eq!(m, 0x5555_5555_5555_5555, "{kind:?}");
            assert_eq!(probe_set(kind, &tags, 9), 0, "{kind:?}");
        }
    }

    #[test]
    fn env_spellings() {
        assert_eq!(ProbeKind::parse_env(Some("0")), ProbeKind::Scalar);
        assert_eq!(ProbeKind::parse_env(Some("portable")), ProbeKind::Portable);
        assert_eq!(ProbeKind::parse_env(None), ProbeKind::best_available());
        assert_eq!(ProbeKind::parse_env(Some("1")), ProbeKind::best_available());
        assert!(ProbeKind::parse_env(None).is_available());
        assert!(!ProbeKind::Scalar.is_batched());
        assert!(ProbeKind::Portable.is_batched());
        #[cfg(target_arch = "x86_64")]
        assert_eq!(ProbeKind::parse_env(Some("sse2")), ProbeKind::Sse2);
    }
}
