//! Set-associative cache models, the GPU render-cache hierarchy, and the
//! banked last-level cache (LLC) simulator used throughout the reproduction.
//!
//! The crate is layered:
//!
//! * [`basic`] — a plain write-back/write-allocate LRU cache used for the
//!   small per-stream *render caches* (vertex, Z, HiZ, stencil, render
//!   target, texture hierarchy),
//! * [`render`] — the full render-cache hierarchy that filters raw pipeline
//!   accesses into the LLC access stream, exactly as the paper's detailed
//!   GPU simulator feeds its offline LLC model,
//! * [`policy`] — the replacement-policy interface the LLC delegates to
//!   (implemented by the `gspc` crate),
//! * [`llc`] — the non-inclusive/non-exclusive banked LLC simulator with
//!   GSPC sample-set identification and per-stream statistics,
//! * [`observe`] — composable per-access event sinks (memory log,
//!   characterization) the LLC is generic over; the default null observer
//!   keeps the uninstrumented hot path branch-free,
//! * [`chartrack`] — characterization instrumentation (texture epochs,
//!   inter-stream reuse, render-target consumption) behind Figures 6–9,
//! * [`optgen`] — the offline next-use annotator that enables Belady's
//!   optimal policy.
//!
//! # Example
//!
//! ```
//! use grcache::{CacheConfig, LruCache, Lookup};
//!
//! let mut cache = LruCache::new(CacheConfig::kb(16, 16));
//! assert!(matches!(cache.access(0x10, false), Lookup::Miss { .. }));
//! assert!(matches!(cache.access(0x10, false), Lookup::Hit));
//! ```

pub mod basic;
pub mod chartrack;
pub mod config;
pub mod llc;
pub mod observe;
pub mod optgen;
pub mod policy;
pub mod probe;
pub mod render;
pub mod stats;

pub use basic::{Lookup, LruCache};
pub use chartrack::{CharReport, CharTracker};
pub use config::{CacheConfig, LlcConfig, LlcGeometry};
pub use llc::{replay_lanes, AccessResult, Llc};
pub use observe::{InvariantObserver, LlcObserver, MemoryLog, NullObserver, SetSnapshot};
pub use optgen::annotate_next_use;
pub use policy::{AccessInfo, Block, FillInfo, Policy};
pub use probe::ProbeKind;
pub use render::{RenderCaches, TextureHierarchyConfig};
pub use stats::LlcStats;
