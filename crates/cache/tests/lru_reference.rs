//! Property test: `LruCache` agrees with a simple reference model.

use proptest::prelude::*;

use grcache::{CacheConfig, Lookup, LruCache};

/// An obviously-correct LRU cache: per set, a most-recent-first vector of
/// `(block, dirty)`.
struct Reference {
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
    set_mask: u64,
}

impl Reference {
    fn new(cfg: CacheConfig) -> Self {
        Reference {
            sets: vec![Vec::new(); cfg.sets()],
            ways: cfg.ways,
            set_mask: cfg.sets() as u64 - 1,
        }
    }

    /// Returns `(hit, writeback)` like [`LruCache::access`].
    fn access(&mut self, block: u64, write: bool) -> (bool, Option<u64>) {
        let set = &mut self.sets[(block & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&(b, _)| b == block) {
            let (b, dirty) = set.remove(pos);
            set.insert(0, (b, dirty || write));
            return (true, None);
        }
        let mut writeback = None;
        if set.len() == self.ways {
            let (victim, dirty) = set.pop().expect("full set");
            if dirty {
                writeback = Some(victim);
            }
        }
        set.insert(0, (block, write));
        (false, writeback)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lru_cache_matches_reference(
        accesses in prop::collection::vec((0u64..64, any::<bool>()), 1..600)
    ) {
        // 4 sets x 4 ways.
        let cfg = CacheConfig { size_bytes: 16 * 64, ways: 4 };
        let mut dut = LruCache::new(cfg);
        let mut reference = Reference::new(cfg);
        for (i, &(block, write)) in accesses.iter().enumerate() {
            let expected = reference.access(block, write);
            let got = dut.access(block, write);
            match (expected, got) {
                ((true, _), Lookup::Hit) => {}
                ((false, wb_e), Lookup::Miss { writeback: wb_g }) => {
                    prop_assert_eq!(wb_e, wb_g, "writeback mismatch at access {}", i);
                }
                (e, g) => {
                    return Err(TestCaseError::fail(format!(
                        "access {i} ({block}, write={write}): expected {e:?}, got {g:?}"
                    )));
                }
            }
        }
        prop_assert_eq!(
            dut.hits() + dut.misses(),
            accesses.len() as u64
        );
    }
}
