//! Randomized test: `LruCache` agrees with a simple reference model.
//!
//! Deterministically seeded (the workspace builds offline with no property
//! -testing dependency), so every run exercises the same 128 traces.

use grcache::{CacheConfig, Lookup, LruCache};

/// SplitMix64 — a tiny deterministic generator for test inputs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// An obviously-correct LRU cache: per set, a most-recent-first vector of
/// `(block, dirty)`.
struct Reference {
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
    set_mask: u64,
}

impl Reference {
    fn new(cfg: CacheConfig) -> Self {
        Reference {
            sets: vec![Vec::new(); cfg.sets()],
            ways: cfg.ways,
            set_mask: cfg.sets() as u64 - 1,
        }
    }

    /// Returns `(hit, writeback)` like [`LruCache::access`].
    fn access(&mut self, block: u64, write: bool) -> (bool, Option<u64>) {
        let set = &mut self.sets[(block & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&(b, _)| b == block) {
            let (b, dirty) = set.remove(pos);
            set.insert(0, (b, dirty || write));
            return (true, None);
        }
        let mut writeback = None;
        if set.len() == self.ways {
            let (victim, dirty) = set.pop().expect("full set");
            if dirty {
                writeback = Some(victim);
            }
        }
        set.insert(0, (block, write));
        (false, writeback)
    }
}

#[test]
fn lru_cache_matches_reference() {
    let mut rng = Rng(0x1_0b5e55ed);
    for case in 0..128 {
        let len = 1 + rng.below(600) as usize;
        let accesses: Vec<(u64, bool)> =
            (0..len).map(|_| (rng.below(64), rng.next() & 1 == 1)).collect();

        // 4 sets x 4 ways.
        let cfg = CacheConfig { size_bytes: 16 * 64, ways: 4 };
        let mut dut = LruCache::new(cfg);
        let mut reference = Reference::new(cfg);
        for (i, &(block, write)) in accesses.iter().enumerate() {
            let expected = reference.access(block, write);
            let got = dut.access(block, write);
            match (expected, got) {
                ((true, _), Lookup::Hit) => {}
                ((false, wb_e), Lookup::Miss { writeback: wb_g }) => {
                    assert_eq!(wb_e, wb_g, "case {case}: writeback mismatch at access {i}");
                }
                (e, g) => panic!(
                    "case {case} access {i} ({block}, write={write}): \
                     expected {e:?}, got {g:?}"
                ),
            }
        }
        assert_eq!(dut.hits() + dut.misses(), accesses.len() as u64);
    }
}
