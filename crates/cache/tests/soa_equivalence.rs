//! Property test: the SoA set storage behaves exactly like the
//! array-of-structs layout it replaced.
//!
//! `ReferenceLlc` below is the old algorithm, kept as an executable
//! specification: a linear probe over the valid ways' tags in way order,
//! first-invalid-way fill, policy callbacks on the set slice in place. The
//! production [`grcache::Llc`] must produce the same per-access outcome and
//! the same DRAM-bound transfer log on randomized access sequences, for
//! policies that exercise every callback — including set-wide `meta`
//! mutation in `choose_victim` (RRIP-style aging) and bypass decisions.

use grcache::{AccessInfo, AccessResult, Block, FillInfo, Llc, LlcConfig, Policy};
use grtrace::{Access, StreamId};

/// The pre-SoA LLC algorithm over plain per-way storage: a linear probe
/// over `(valid, tag)` pairs, first-invalid-way fill, policy callbacks on
/// the set slice in place. (Tags live in a parallel array because the
/// production [`Block`] no longer carries one.)
struct ReferenceLlc<P> {
    cfg: LlcConfig,
    policy: P,
    blocks: Vec<Block>,
    tags: Vec<u64>,
    memory_log: Vec<(u64, bool)>,
    seq: u64,
}

impl<P: Policy> ReferenceLlc<P> {
    fn new(cfg: LlcConfig, policy: P) -> Self {
        ReferenceLlc {
            cfg,
            policy,
            blocks: vec![Block::default(); cfg.total_blocks()],
            tags: vec![0; cfg.total_blocks()],
            memory_log: Vec::new(),
            seq: 0,
        }
    }

    fn access_annotated(&mut self, access: &Access, next_use: u64) -> AccessResult {
        let geo = self.cfg.geometry();
        let block = access.block();
        let (bank, set, tag) = geo.map(block);
        let info = AccessInfo {
            seq: self.seq,
            block,
            bank,
            set_in_bank: set,
            stream: access.stream,
            class: access.stream.policy_class(),
            write: access.write,
            is_sample: self.cfg.is_sample_set(set),
            next_use,
        };
        self.seq += 1;

        let base = geo.set_base(bank, set);
        let ways = self.cfg.ways;
        let set_tags = &mut self.tags[base..base + ways];
        let set_blocks = &mut self.blocks[base..base + ways];

        if let Some(way) =
            set_blocks.iter().zip(set_tags.iter()).position(|(b, &t)| b.valid && t == tag)
        {
            set_blocks[way].dirty |= info.write;
            set_blocks[way].next_use = next_use;
            self.policy.on_hit(&info, set_blocks, way);
            return AccessResult::Hit;
        }

        if self.policy.should_bypass(&info) {
            self.memory_log.push((info.block, info.write));
            return AccessResult::Bypass;
        }

        let mut dirty_eviction = false;
        let way = match set_blocks.iter().position(|b| !b.valid) {
            Some(free) => free,
            None => {
                let victim = self.policy.choose_victim(&info, set_blocks);
                self.policy.on_evict(&info, set_blocks, victim);
                dirty_eviction = set_blocks[victim].dirty;
                if dirty_eviction {
                    self.memory_log.push((geo.unmap(bank, set, set_tags[victim]), true));
                }
                victim
            }
        };

        set_blocks[way] = Block { valid: true, dirty: info.write, meta: 0, next_use };
        set_tags[way] = tag;
        self.policy.on_fill(&info, set_blocks, way);
        self.memory_log.push((info.block, false));
        AccessResult::Miss { dirty_eviction }
    }
}

/// RRIP-style test policy: ages `meta` across the whole set inside
/// `choose_victim` (the loop RRIP policies use), so a layout bug in the
/// gather/scatter adapter that loses cross-way `meta` writes is caught.
#[derive(Clone, PartialEq, Eq, Debug)]
struct AgingRrip {
    fills: u64,
}

impl Policy for AgingRrip {
    fn name(&self) -> &str {
        "TEST-AGING-RRIP"
    }
    fn state_bits_per_block(&self) -> u32 {
        2
    }
    fn on_hit(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) {
        set[way].meta = 0;
    }
    fn choose_victim(&mut self, _a: &AccessInfo, set: &mut [Block]) -> usize {
        loop {
            if let Some(way) = set.iter().position(|b| b.meta >= 3) {
                return way;
            }
            for b in set.iter_mut() {
                b.meta += 1;
            }
        }
    }
    fn on_fill(&mut self, _a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        self.fills += 1;
        set[way].meta = 2;
        FillInfo::rrip(2, 3)
    }
}

/// Bypassing test policy: sends render-target stores around the LLC on
/// non-sample sets and victimizes by the `next_use`/`dirty` fields the
/// simulator (not the policy) maintains — so it notices if the gathered
/// view ever carries stale non-`meta` state.
#[derive(Clone, PartialEq, Eq, Debug)]
struct BypassingFarthest {
    bypasses: u64,
}

impl Policy for BypassingFarthest {
    fn name(&self) -> &str {
        "TEST-BYPASS-FARTHEST"
    }
    fn state_bits_per_block(&self) -> u32 {
        0
    }
    fn should_bypass(&mut self, a: &AccessInfo) -> bool {
        let bypass = a.write && a.stream == StreamId::RenderTarget && !a.is_sample;
        self.bypasses += u64::from(bypass);
        bypass
    }
    fn on_hit(&mut self, _a: &AccessInfo, _set: &mut [Block], _way: usize) {}
    fn choose_victim(&mut self, _a: &AccessInfo, set: &mut [Block]) -> usize {
        set.iter()
            .enumerate()
            .max_by_key(|(i, b)| (b.next_use, !b.dirty, *i))
            .map(|(i, _)| i)
            .expect("set is non-empty")
    }
    fn on_fill(&mut self, _a: &AccessInfo, _set: &mut [Block], _way: usize) -> FillInfo {
        FillInfo::default()
    }
}

/// SplitMix64 — the repo's seedable test RNG.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

const STREAMS: [StreamId; 5] =
    [StreamId::Texture, StreamId::Z, StreamId::RenderTarget, StreamId::Vertex, StreamId::Display];

/// Replays a randomized sequence through both models and checks every
/// per-access outcome plus the full DRAM transfer logs.
fn check_equivalence<P: Policy + Clone + PartialEq + std::fmt::Debug>(
    cfg: LlcConfig,
    policy: P,
    seed: u64,
    accesses: usize,
    block_pool: u64,
) {
    let mut rng = SplitMix64(seed);
    let mut soa = Llc::with_observer(cfg, policy.clone(), grcache::MemoryLog::new());
    let mut aos = ReferenceLlc::new(cfg, policy);
    for i in 0..accesses {
        let addr = (rng.next() % block_pool) * 64;
        let stream = STREAMS[(rng.next() % STREAMS.len() as u64) as usize];
        let write = rng.next().is_multiple_of(4);
        let access = if write { Access::store(addr, stream) } else { Access::load(addr, stream) };
        // Synthetic next-use annotations: arbitrary but identical for both
        // models, with a sprinkling of "never reused" sentinels.
        let next_use = if rng.next().is_multiple_of(8) { u64::MAX } else { rng.next() % 10_000 };
        let got = soa.access_annotated(&access, next_use);
        let want = aos.access_annotated(&access, next_use);
        assert_eq!(got, want, "outcome diverged at access {i} (seed {seed})");
    }
    assert_eq!(
        soa.memory_log().expect("memory log attached"),
        &aos.memory_log[..],
        "DRAM transfer logs diverged (seed {seed})"
    );
    let (stats, soa_policy) = soa.into_parts();
    assert_eq!(soa_policy, aos.policy, "policy state diverged (seed {seed})");
    assert!(stats.total_hits() > 0, "degenerate sequence: no hits (seed {seed})");
    assert!(stats.evictions > 0, "degenerate sequence: no evictions (seed {seed})");
}

fn small_cfg() -> LlcConfig {
    // 4 banks x 2 sets x 4 ways = 32 blocks: small enough that a modest
    // block pool forces constant evictions.
    LlcConfig { size_bytes: 2048, ways: 4, banks: 4, sample_period: 2 }
}

#[test]
fn aging_policy_matches_reference_layout() {
    for seed in 1..=8 {
        check_equivalence(small_cfg(), AgingRrip { fills: 0 }, seed, 4_000, 96);
    }
}

#[test]
fn bypassing_policy_matches_reference_layout() {
    for seed in 101..=108 {
        check_equivalence(small_cfg(), BypassingFarthest { bypasses: 0 }, seed, 4_000, 96);
    }
}

#[test]
fn paper_geometry_matches_reference_layout() {
    // The real 16-way geometry at a small capacity, fewer iterations.
    let cfg = LlcConfig { size_bytes: 64 * 1024, ways: 16, banks: 4, sample_period: 64 };
    check_equivalence(cfg, AgingRrip { fills: 0 }, 42, 20_000, 2_048);
    check_equivalence(cfg, BypassingFarthest { bypasses: 0 }, 43, 20_000, 2_048);
}
