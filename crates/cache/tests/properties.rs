//! Seeded property tests for the LLC address mapping: `unmap` must invert
//! `map` for *every* geometry the configuration space admits, including the
//! degenerate single-set-per-bank and single-bank corners.

use grcache::LlcConfig;

/// SplitMix64 — a tiny deterministic generator; the fixed seed keeps the
/// sampled geometries reproducible across runs and platforms.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[(self.next() % options.len() as u64) as usize]
    }
}

#[test]
fn unmap_roundtrips_map_over_randomized_geometries() {
    let mut rng = SplitMix64(0xC0FFEE);
    for round in 0..200 {
        let ways = rng.pick(&[1usize, 2, 4, 8, 16]);
        let banks = rng.pick(&[1usize, 2, 4, 8]);
        // 1 << 0 .. 1 << 11 sets per bank, including the degenerate single
        // set (set_bits == 0) that exercises the no-fold path.
        let sets_per_bank = 1u64 << (rng.next() % 12);
        let cfg = LlcConfig {
            size_bytes: 64 * ways as u64 * banks as u64 * sets_per_bank,
            ways,
            banks,
            sample_period: rng.pick(&[1usize, 2, 64]),
        };
        assert_eq!(cfg.sets_per_bank() as u64, sets_per_bank);
        let geo = cfg.geometry();
        for _ in 0..500 {
            let block = rng.next();
            let (bank, set, tag) = geo.map(block);
            assert!(bank < banks, "bank out of range (round {round})");
            assert!(set < sets_per_bank as usize, "set out of range (round {round})");
            assert_eq!(
                geo.unmap(bank, set, tag),
                block,
                "roundtrip failed for block {block:#x} with ways={ways} banks={banks} \
                 sets_per_bank={sets_per_bank} (round {round})"
            );
        }
    }
}

#[test]
fn map_is_injective_on_small_geometries() {
    use std::collections::HashSet;
    let mut rng = SplitMix64(0xBADC0DE);
    for _ in 0..20 {
        let ways = rng.pick(&[1usize, 2, 4]);
        let banks = rng.pick(&[1usize, 2, 4]);
        let sets_per_bank = 1u64 << (rng.next() % 6);
        let cfg = LlcConfig {
            size_bytes: 64 * ways as u64 * banks as u64 * sets_per_bank,
            ways,
            banks,
            sample_period: 1,
        };
        let geo = cfg.geometry();
        let mut seen = HashSet::new();
        for block in 0..20_000u64 {
            assert!(seen.insert(geo.map(block)), "collision for block {block}");
        }
    }
}
