//! Scenario tests for the GPU interval model: the qualitative claims the
//! paper's performance figures rest on.

use grdram::TimingParams;
use grgpu::{time_frame, GpuConfig, Workload};

fn balanced_work() -> Workload {
    Workload {
        shaded_pixels: 600_000,
        texel_samples: 6_000_000,
        vertices: 300_000,
        llc_accesses: 1_500_000,
    }
}

fn requests(n: u64) -> Vec<(u64, bool)> {
    (0..n).map(|i| (i.wrapping_mul(97), i % 5 == 0)).collect()
}

#[test]
fn frame_time_is_monotone_in_memory_traffic() {
    let cfg = GpuConfig::baseline();
    let dram = TimingParams::ddr3_1600();
    let mut last = 0.0;
    for n in [50_000u64, 100_000, 200_000, 400_000] {
        let t = time_frame(&cfg, dram, &balanced_work(), &requests(n));
        assert!(t.frame_ns >= last, "frame time fell when traffic grew at n={n}");
        last = t.frame_ns;
    }
}

#[test]
fn sampler_bound_workload_reports_sampler_bottleneck() {
    let cfg = GpuConfig::baseline();
    let work = Workload { texel_samples: 10_000_000_000, ..balanced_work() };
    let t = time_frame(&cfg, TimingParams::ddr3_1600(), &work, &requests(1000));
    assert_eq!(t.bottleneck(), "sampler");
}

#[test]
fn writeback_traffic_costs_bandwidth() {
    let cfg = GpuConfig::baseline();
    let dram = TimingParams::ddr3_1600();
    let reads_only: Vec<(u64, bool)> = (0..200_000u64).map(|i| (i * 97, false)).collect();
    let with_writes: Vec<(u64, bool)> = (0..200_000u64)
        .map(|i| (i * 97, i % 3 == 0))
        .chain((0..66_000u64).map(|i| (i * 131, true)))
        .collect();
    let a = time_frame(&cfg, dram, &balanced_work(), &reads_only);
    let b = time_frame(&cfg, dram, &balanced_work(), &with_writes);
    assert!(b.frame_ns > a.frame_ns, "writebacks must cost frame time");
}

#[test]
fn exposure_shrinks_with_more_threads() {
    let dram = TimingParams::ddr3_1600();
    let few = GpuConfig { threads_per_core: 4, ..GpuConfig::baseline() };
    let many = GpuConfig { threads_per_core: 16, ..GpuConfig::baseline() };
    let reqs = requests(100_000);
    let a = time_frame(&few, dram, &balanced_work(), &reqs);
    let b = time_frame(&many, dram, &balanced_work(), &reqs);
    assert!(b.exposure_ns < a.exposure_ns, "more thread contexts must hide more latency");
}

#[test]
fn timing_is_deterministic() {
    let cfg = GpuConfig::baseline();
    let dram = TimingParams::ddr3_1600();
    let reqs = requests(50_000);
    let a = time_frame(&cfg, dram, &balanced_work(), &reqs);
    let b = time_frame(&cfg, dram, &balanced_work(), &reqs);
    assert_eq!(a, b);
}
