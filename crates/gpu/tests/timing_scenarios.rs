//! Scenario tests for the GPU interval model: the qualitative claims the
//! paper's performance figures rest on.

use grdram::TimingParams;
use grgpu::{time_frame, GpuConfig, Workload};

fn balanced_work() -> Workload {
    Workload {
        shaded_pixels: 600_000,
        texel_samples: 6_000_000,
        vertices: 300_000,
        llc_accesses: 1_500_000,
    }
}

fn requests(n: u64) -> Vec<(u64, bool)> {
    (0..n).map(|i| (i.wrapping_mul(97), i % 5 == 0)).collect()
}

#[test]
fn frame_time_is_monotone_in_memory_traffic() {
    let cfg = GpuConfig::baseline();
    let dram = TimingParams::ddr3_1600();
    let mut last = 0.0;
    for n in [50_000u64, 100_000, 200_000, 400_000] {
        let t = time_frame(&cfg, dram, &balanced_work(), &requests(n));
        assert!(t.frame_ns >= last, "frame time fell when traffic grew at n={n}");
        last = t.frame_ns;
    }
}

#[test]
fn sampler_bound_workload_reports_sampler_bottleneck() {
    let cfg = GpuConfig::baseline();
    let work = Workload { texel_samples: 10_000_000_000, ..balanced_work() };
    let t = time_frame(&cfg, TimingParams::ddr3_1600(), &work, &requests(1000));
    assert_eq!(t.bottleneck(), "sampler");
}

#[test]
fn writeback_traffic_costs_bandwidth() {
    let cfg = GpuConfig::baseline();
    let dram = TimingParams::ddr3_1600();
    let reads_only: Vec<(u64, bool)> = (0..200_000u64).map(|i| (i * 97, false)).collect();
    let with_writes: Vec<(u64, bool)> = (0..200_000u64)
        .map(|i| (i * 97, i % 3 == 0))
        .chain((0..66_000u64).map(|i| (i * 131, true)))
        .collect();
    let a = time_frame(&cfg, dram, &balanced_work(), &reads_only);
    let b = time_frame(&cfg, dram, &balanced_work(), &with_writes);
    assert!(b.frame_ns > a.frame_ns, "writebacks must cost frame time");
}

#[test]
fn exposure_shrinks_with_more_threads() {
    let dram = TimingParams::ddr3_1600();
    let few = GpuConfig { threads_per_core: 4, ..GpuConfig::baseline() };
    let many = GpuConfig { threads_per_core: 16, ..GpuConfig::baseline() };
    let reqs = requests(100_000);
    let a = time_frame(&few, dram, &balanced_work(), &reqs);
    let b = time_frame(&many, dram, &balanced_work(), &reqs);
    assert!(b.exposure_ns < a.exposure_ns, "more thread contexts must hide more latency");
}

/// Growing a prefix-stable miss stream (each volume extends the last,
/// reads and writebacks alike) can only lower FPS, never raise it —
/// the property the Figure 15 comparisons lean on.
#[test]
fn more_misses_never_raise_fps() {
    let cfg = GpuConfig::baseline();
    let dram = TimingParams::ddr3_1600();
    let mut last_fps = f64::INFINITY;
    for step in 1..=16u64 {
        let t = time_frame(&cfg, dram, &balanced_work(), &requests(step * 25_000));
        let fps = t.fps();
        assert!(
            fps <= last_fps,
            "fps rose from {last_fps} to {fps} when misses grew to {}",
            step * 25_000
        );
        last_fps = fps;
    }
}

/// The 512-context GPU of Figure 17 (lower panel) is more
/// compute-bound, so the same miss savings buy a smaller FPS delta —
/// damped, never amplified, relative to the 768-context baseline.
#[test]
fn small_gpu_damps_fps_deltas() {
    let small = GpuConfig::less_aggressive();
    assert_eq!(small.thread_contexts(), 512);
    let dram = TimingParams::ddr3_1600();
    for (base_misses, improved_misses) in [(100_000u64, 50_000u64), (150_000, 100_000)] {
        let gain = |cfg: &GpuConfig| {
            let base = time_frame(cfg, dram, &balanced_work(), &requests(base_misses));
            let improved = time_frame(cfg, dram, &balanced_work(), &requests(improved_misses));
            improved.fps() / base.fps()
        };
        let wide = gain(&GpuConfig::baseline());
        let narrow = gain(&small);
        assert!(narrow >= 1.0 - 1e-9, "saving misses must not hurt: {narrow}");
        assert!(
            narrow <= wide * 1.001,
            "512-context GPU amplified the FPS delta: {narrow} > {wide} ({base_misses} -> {improved_misses} misses)"
        );
    }
}

#[test]
fn timing_is_deterministic() {
    let cfg = GpuConfig::baseline();
    let dram = TimingParams::ddr3_1600();
    let reqs = requests(50_000);
    let a = time_frame(&cfg, dram, &balanced_work(), &reqs);
    let b = time_frame(&cfg, dram, &balanced_work(), &reqs);
    assert_eq!(a, b);
}
