//! The interval frame-time model.

use grdram::{DramSim, Request, TimingParams};

use crate::GpuConfig;

/// The computational work of one rendered frame, as seen by the machine.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Workload {
    /// Pixels shaded (including overdraw).
    pub shaded_pixels: u64,
    /// Texels filtered by the samplers.
    pub texel_samples: u64,
    /// Vertices transformed.
    pub vertices: u64,
    /// Accesses presented to the LLC.
    pub llc_accesses: u64,
}

/// The model's verdict for one frame.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameTiming {
    /// Shader-throughput bound, in nanoseconds.
    pub t_shader_ns: f64,
    /// Sampler-throughput bound, in nanoseconds.
    pub t_sampler_ns: f64,
    /// LLC-bandwidth bound, in nanoseconds.
    pub t_llc_ns: f64,
    /// DRAM time (busiest channel busy time), in nanoseconds.
    pub t_dram_ns: f64,
    /// Exposed memory latency multithreading could not hide.
    pub exposure_ns: f64,
    /// Final frame time.
    pub frame_ns: f64,
    /// Average DRAM request latency observed.
    pub dram_latency_ns: f64,
}

impl FrameTiming {
    /// Frames per second this timing implies.
    pub fn fps(&self) -> f64 {
        if self.frame_ns == 0.0 {
            0.0
        } else {
            1e9 / self.frame_ns
        }
    }

    /// Which bound dominated (`"shader"`, `"sampler"`, `"llc"`, `"dram"`).
    pub fn bottleneck(&self) -> &'static str {
        let m = self.t_shader_ns.max(self.t_sampler_ns).max(self.t_llc_ns).max(self.t_dram_ns);
        if m == self.t_dram_ns {
            "dram"
        } else if m == self.t_shader_ns {
            "shader"
        } else if m == self.t_sampler_ns {
            "sampler"
        } else {
            "llc"
        }
    }
}

/// Computes the frame time for `work` given the DRAM-bound transfer log of
/// the LLC run (`(block, is_write)` pairs from
/// [`grcache::Llc::with_memory_log`]).
///
/// The memory requests are replayed back-to-back through the DDR3 timing
/// model to measure the frame's total memory service time (the bandwidth
/// bound, including row conflicts, turnarounds, and refresh); the exposure
/// term then uses an analytic loaded-latency estimate built from the
/// measured row-hit rate, which stays numerically stable where a
/// critically-loaded queueing replay would not.
pub fn time_frame(
    cfg: &GpuConfig,
    dram: TimingParams,
    work: &Workload,
    memory_requests: &[(u64, bool)],
) -> FrameTiming {
    let shader_ops =
        work.shaded_pixels as f64 * cfg.ops_per_pixel + work.vertices as f64 * cfg.ops_per_vertex;
    let t_shader_ns = shader_ops
        / (f64::from(cfg.shader_cores) * f64::from(cfg.ops_per_core_cycle) * cfg.core_clock_ghz);
    let t_sampler_ns = work.texel_samples as f64
        / (f64::from(cfg.samplers) * f64::from(cfg.texels_per_sampler_cycle) * cfg.core_clock_ghz);
    let t_llc_ns = work.llc_accesses as f64 / (f64::from(cfg.llc_banks) * cfg.llc_clock_ghz);

    let compute_bound = t_shader_ns.max(t_sampler_ns).max(t_llc_ns);

    let build = |spacing: f64| -> Vec<Request> {
        memory_requests
            .iter()
            .enumerate()
            .map(|(i, &(block, write))| Request { block, write, arrival_ns: i as f64 * spacing })
            .collect()
    };

    // Bandwidth bound: replay back-to-back to measure the total DRAM
    // service time, including row conflicts, bus turnarounds, and refresh
    // (costs that the data-bus busy time alone would miss).
    let saturated = DramSim::new(dram).run(&build(0.0));
    let t_mem = saturated.makespan_ns;
    let frame_base = compute_bound.max(t_mem);

    // Loaded request latency, modeled analytically so it stays stable
    // rather than inheriting the critically-loaded queueing noise of a
    // replay: the service mix from the measured row-hit rate plus an
    // M/D/1-style wait that grows with memory-system load.
    let rhr = saturated.row_hit_rate();
    let burst_ns = f64::from(dram.burst_clocks()) * dram.tck_ns;
    let service_ns = rhr * dram.row_hit_ns() + (1.0 - rhr) * dram.row_miss_ns() + burst_ns;
    let load = (t_mem / frame_base.max(1.0)).min(0.95);
    let latency_ns = service_ns * (1.0 + load / (2.0 * (1.0 - load)));

    let misses = memory_requests.iter().filter(|&&(_, w)| !w).count() as f64;
    // Raw exposed latency if every thread simply waited...
    let hiding = f64::from(cfg.thread_contexts()) * cfg.mlp * cfg.hiding_efficiency;
    let raw_exposure = misses * latency_ns / hiding.max(1.0);
    // ...scaled by how little independent compute there is to overlap with:
    // a machine with relatively more shader work per memory access hides
    // more of its latency (this is what makes the less aggressive GPU of
    // Figure 17 *less* sensitive to memory-system improvements).
    let overlap = t_mem / (t_mem + compute_bound).max(1.0);
    let exposure_ns = raw_exposure * overlap;

    let frame_ns = frame_base + exposure_ns;
    FrameTiming {
        t_shader_ns,
        t_sampler_ns,
        t_llc_ns,
        t_dram_ns: t_mem,
        exposure_ns,
        frame_ns,
        dram_latency_ns: latency_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work() -> Workload {
        Workload {
            shaded_pixels: 1_000_000,
            texel_samples: 8_000_000,
            vertices: 500_000,
            llc_accesses: 2_000_000,
        }
    }

    fn requests(n: u64) -> Vec<(u64, bool)> {
        (0..n).map(|i| (i.wrapping_mul(97), i % 5 == 0)).collect()
    }

    #[test]
    fn fewer_misses_means_faster_frames() {
        let cfg = GpuConfig::baseline();
        let many = time_frame(&cfg, TimingParams::ddr3_1600(), &work(), &requests(400_000));
        let few = time_frame(&cfg, TimingParams::ddr3_1600(), &work(), &requests(300_000));
        assert!(few.frame_ns < many.frame_ns);
        assert!(few.fps() > many.fps());
    }

    #[test]
    fn faster_dram_shrinks_the_gain() {
        // The speedup from saving misses is smaller on DDR3-1867 than on
        // DDR3-1600 (Figure 17, upper panel).
        let cfg = GpuConfig::baseline();
        // Enough shading work that the compute bound sits between the fast
        // and slow DRAM's bandwidth bounds, as on a real frame.
        let w = Workload { shaded_pixels: 14_000_000, ..work() };
        let speedup = |dram: TimingParams| {
            let base = time_frame(&cfg, dram, &w, &requests(400_000));
            let improved = time_frame(&cfg, dram, &w, &requests(300_000));
            base.frame_ns / improved.frame_ns
        };
        let slow_gain = speedup(TimingParams::ddr3_1600());
        let fast_gain = speedup(TimingParams::ddr3_1867());
        assert!(slow_gain > 1.0);
        assert!(fast_gain > 1.0);
        assert!(fast_gain < slow_gain, "{fast_gain} !< {slow_gain}");
    }

    #[test]
    fn narrower_gpu_shrinks_the_gain() {
        // A less aggressive GPU is more compute-bound, so memory savings
        // matter less (Figure 17, lower panel). Request volumes are kept
        // below DRAM saturation so queueing stays in the stable regime.
        let speedup = |cfg: GpuConfig| {
            let base = time_frame(&cfg, TimingParams::ddr3_1600(), &work(), &requests(150_000));
            let improved = time_frame(&cfg, TimingParams::ddr3_1600(), &work(), &requests(100_000));
            base.frame_ns / improved.frame_ns
        };
        let wide = speedup(GpuConfig::baseline());
        let narrow = speedup(GpuConfig::less_aggressive());
        assert!(narrow <= wide * 1.001, "{narrow} !<= {wide}");
    }

    #[test]
    fn compute_bound_frames_ignore_memory() {
        let cfg = GpuConfig::baseline();
        let heavy_compute = Workload { shaded_pixels: 500_000_000, ..work() };
        let t = time_frame(&cfg, TimingParams::ddr3_1600(), &heavy_compute, &requests(1000));
        assert_eq!(t.bottleneck(), "shader");
    }

    #[test]
    fn empty_memory_log_is_fine() {
        let cfg = GpuConfig::baseline();
        let t = time_frame(&cfg, TimingParams::ddr3_1600(), &work(), &[]);
        assert!(t.frame_ns > 0.0);
        assert_eq!(t.t_dram_ns, 0.0);
    }

    #[test]
    fn exposure_stays_bounded_under_heavy_load() {
        // Regression test: a saturating memory stream must not blow the
        // exposure term up by orders of magnitude (the failure mode of a
        // critically-loaded queueing replay).
        let cfg = GpuConfig::baseline();
        let t = time_frame(&cfg, TimingParams::ddr3_1600(), &work(), &requests(500_000));
        assert!(
            t.exposure_ns < t.t_dram_ns,
            "exposure {} should stay below the bandwidth bound {}",
            t.exposure_ns,
            t.t_dram_ns
        );
        // The modeled request latency stays within a realistic DDR3 range.
        assert!(t.dram_latency_ns < 2_000.0, "latency {}", t.dram_latency_ns);
    }

    #[test]
    fn fps_is_inverse_of_frame_time() {
        let cfg = GpuConfig::baseline();
        let t = time_frame(&cfg, TimingParams::ddr3_1600(), &work(), &requests(10_000));
        assert!((t.fps() * t.frame_ns - 1e9).abs() < 1.0);
    }
}
