//! GPU machine configurations (Section 4 of the paper).

/// The modeled GPU.
///
/// The baseline mirrors the paper: 96 shader cores at 1.6 GHz with eight
/// thread contexts each (768 threads), two 4-wide SIMD pipelines per core
/// (16 single-precision ops per core-cycle, ~2.5 TFLOPS aggregate), twelve
/// samplers delivering four 32-bit texels per cycle (76.8 GTexels/s), and
/// a four-banked LLC at 4 GHz with a 20-cycle load-to-use latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Configuration name for reports.
    pub name: &'static str,
    /// Number of shader cores.
    pub shader_cores: u32,
    /// Thread contexts per core.
    pub threads_per_core: u32,
    /// Shader core clock in GHz.
    pub core_clock_ghz: f64,
    /// Single-precision operations per core per cycle.
    pub ops_per_core_cycle: u32,
    /// Number of fixed-function texture samplers.
    pub samplers: u32,
    /// Texels each sampler filters per cycle.
    pub texels_per_sampler_cycle: u32,
    /// LLC bank count.
    pub llc_banks: u32,
    /// LLC clock in GHz.
    pub llc_clock_ghz: f64,
    /// Minimum LLC round-trip load-to-use latency, in LLC cycles.
    pub llc_latency_cycles: u32,
    /// Average shader operations per shaded pixel (pixel shader length).
    pub ops_per_pixel: f64,
    /// Average shader operations per vertex (vertex shader length).
    pub ops_per_vertex: f64,
    /// Memory-level parallelism per thread the machine can sustain while
    /// hiding DRAM latency.
    pub mlp: f64,
    /// Fraction of thread contexts that, on average, hold independent
    /// work ready to overlap with an outstanding miss (occupancy,
    /// register pressure, and divergence keep this well below 1).
    pub hiding_efficiency: f64,
}

impl GpuConfig {
    /// The paper's baseline GPU: 96 cores × 8 threads, twelve samplers.
    pub fn baseline() -> Self {
        GpuConfig {
            name: "96-core GPU",
            shader_cores: 96,
            threads_per_core: 8,
            core_clock_ghz: 1.6,
            ops_per_core_cycle: 16,
            samplers: 12,
            texels_per_sampler_cycle: 4,
            llc_banks: 4,
            llc_clock_ghz: 4.0,
            llc_latency_cycles: 20,
            ops_per_pixel: 2500.0,
            ops_per_vertex: 300.0,
            mlp: 2.0,
            hiding_efficiency: 0.125,
        }
    }

    /// The less aggressive GPU of Figure 17 (lower panel): 64 cores × 8
    /// threads (512 contexts) and eight samplers; everything else equal.
    pub fn less_aggressive() -> Self {
        GpuConfig { name: "64-core GPU", shader_cores: 64, samplers: 8, ..Self::baseline() }
    }

    /// Total thread contexts.
    pub fn thread_contexts(&self) -> u32 {
        self.shader_cores * self.threads_per_core
    }

    /// Peak shader throughput in single-precision GFLOPS.
    pub fn peak_gflops(&self) -> f64 {
        f64::from(self.shader_cores) * f64::from(self.ops_per_core_cycle) * self.core_clock_ghz
    }

    /// Peak texture fill rate in GTexels/s.
    pub fn peak_gtexels(&self) -> f64 {
        f64::from(self.samplers) * f64::from(self.texels_per_sampler_cycle) * self.core_clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let g = GpuConfig::baseline();
        assert_eq!(g.thread_contexts(), 768);
        // "aggregate peak throughput of nearly 2.5 TFLOPS"
        assert!((g.peak_gflops() - 2457.6).abs() < 1.0);
        // "peak texture fill rate of 76.8 GTexels/second"
        assert!((g.peak_gtexels() - 76.8).abs() < 1e-9);
    }

    #[test]
    fn less_aggressive_matches_paper() {
        let g = GpuConfig::less_aggressive();
        assert_eq!(g.thread_contexts(), 512);
        assert_eq!(g.samplers, 8);
        assert!(g.peak_gflops() < GpuConfig::baseline().peak_gflops());
    }
}
