//! GPU interval timing model: translating LLC behaviour into frame rate.
//!
//! The paper's performance numbers (Figures 15–17) come from a detailed
//! in-house GPU simulator. This crate implements an *interval model* of the
//! same machine — the 96-core × 8-thread, 1.6 GHz shader array with twelve
//! fixed-function samplers, a banked 4 GHz LLC, and the DDR3 memory system
//! of [`grdram`] — that computes frame time as the maximum of the
//! machine's throughput bounds plus the exposed memory latency that
//! multithreading fails to hide:
//!
//! ```text
//! t_frame = max(t_shader, t_sampler, t_llc, t_dram_bandwidth) + exposure
//! exposure = misses x avg_dram_latency / (thread_contexts x MLP)
//! ```
//!
//! This captures exactly the effects the paper's sensitivity studies probe:
//! LLC miss savings shorten both the DRAM-bandwidth bound and the exposure
//! term; a faster DRAM (Figure 17, upper) shrinks what there is to save; a
//! narrower GPU (Figure 17, lower) grows the compute bound and hides the
//! memory term behind it.
//!
//! # Example
//!
//! ```
//! use grdram::TimingParams;
//! use grgpu::{FrameTiming, GpuConfig, Workload};
//!
//! let cfg = GpuConfig::baseline();
//! let work = Workload {
//!     shaded_pixels: 2_000_000,
//!     texel_samples: 16_000_000,
//!     vertices: 800_000,
//!     llc_accesses: 2_500_000,
//! };
//! let requests: Vec<(u64, bool)> = (0..100_000u64).map(|i| (i * 3, i % 4 == 0)).collect();
//! let t = grgpu::time_frame(&cfg, TimingParams::ddr3_1600(), &work, &requests);
//! assert!(t.fps() > 0.0);
//! ```

mod config;
mod timing;

pub use config::GpuConfig;
pub use timing::{time_frame, FrameTiming, Workload};
