//! Integration tests on the synthesized workload's structural invariants.

use grsynth::{AppProfile, FrameRenderer, Scale};
use grtrace::{StreamId, BLOCK_BYTES};

#[test]
fn work_counters_are_populated_and_consistent() {
    let app = AppProfile::by_abbrev("Civilization").unwrap();
    let (trace, work) = FrameRenderer::new(&app, 0, Scale::Tiny).render_with_work();
    assert!(work.shaded_pixels > 0);
    assert!(work.texel_samples > 0);
    assert!(work.vertices > 0);
    // Every LLC access originates from a raw pipeline access (the render
    // caches only filter; flush writebacks are bounded by raw stores).
    assert!(work.raw_accesses as usize >= trace.len() / 2);
    // Texel fetches should far exceed the texture *block* traffic.
    assert!(work.texel_samples > trace.stats().accesses(StreamId::Texture));
}

#[test]
fn scaled_frames_shrink_quadratically() {
    let app = AppProfile::by_abbrev("Heaven").unwrap();
    let tiny = grsynth::generate_frame(&app, 0, Scale::Tiny);
    let quarter = grsynth::generate_frame(&app, 0, Scale::Quarter);
    let ratio = quarter.len() as f64 / tiny.len() as f64;
    // Quarter scale has 4x the pixels of tiny scale; traffic should grow
    // roughly accordingly (within generous bounds).
    assert!(ratio > 2.0 && ratio < 8.0, "ratio {ratio}");
}

#[test]
fn every_app_produces_dynamic_texturing_potential() {
    // At least some texture reads must target render-target address
    // ranges (dynamic texturing), for every application profile.
    for app in AppProfile::all() {
        let trace = grsynth::generate_frame(&app, 0, Scale::Tiny);
        let rt_blocks: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|a| a.stream == StreamId::RenderTarget)
            .map(|a| a.block())
            .collect();
        let consumed = trace
            .iter()
            .filter(|a| a.stream == StreamId::Texture && rt_blocks.contains(&a.block()))
            .count();
        assert!(consumed > 0, "{} has no render-to-texture reuse", app.abbrev);
    }
}

#[test]
fn addresses_stay_within_allocated_surfaces() {
    // Block addresses must be 64 B aligned by construction and non-zero
    // (the allocator starts past address zero).
    let app = AppProfile::by_abbrev("Dirt").unwrap();
    let trace = grsynth::generate_frame(&app, 0, Scale::Tiny);
    for a in trace.iter().take(50_000) {
        assert!(a.addr >= BLOCK_BYTES, "address below allocator base");
    }
}

#[test]
fn display_stream_is_unique_blocks() {
    // The displayable color stream is written once per block per frame.
    let app = AppProfile::by_abbrev("BioShock").unwrap();
    let trace = grsynth::generate_frame(&app, 0, Scale::Tiny);
    let display: Vec<u64> =
        trace.iter().filter(|a| a.stream == StreamId::Display).map(|a| a.block()).collect();
    let unique: std::collections::HashSet<&u64> = display.iter().collect();
    assert_eq!(display.len(), unique.len(), "display blocks rewritten");
}

#[test]
fn consumption_rate_tracks_profile_knob() {
    // Assassin's Creed (rate 0.90) must show far more of its offscreen
    // targets consumed than DMC (rate 0.18).
    let measure = |abbrev: &str| {
        let app = AppProfile::by_abbrev(abbrev).unwrap();
        let trace = grsynth::generate_frame(&app, 0, Scale::Tiny);
        let rt_blocks: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|a| a.stream == StreamId::RenderTarget)
            .map(|a| a.block())
            .collect();
        let consumed: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|a| a.stream == StreamId::Texture && rt_blocks.contains(&a.block()))
            .map(|a| a.block())
            .collect();
        consumed.len() as f64 / rt_blocks.len() as f64
    };
    // The measured rate includes always-consumed surfaces (the back
    // buffer feeds the post passes in every app), so the knob shows up as
    // a solid gap rather than a pure ratio.
    let ac = measure("AssnCreed");
    let dmc = measure("DMC");
    assert!(ac > dmc + 0.1, "AssnCreed {ac:.2} vs DMC {dmc:.2}");
}
