//! Surfaces (2D buffers) and their address-space layout.

use grtrace::BLOCK_BYTES;

/// What a surface holds; used for address-space bookkeeping and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SurfaceKind {
    /// Vertex attribute buffer.
    VertexBuffer,
    /// Vertex index buffer.
    IndexBuffer,
    /// Static (pre-authored) texture atlas.
    StaticTexture,
    /// Depth (Z) buffer.
    Depth,
    /// Hierarchical depth buffer.
    HiZ,
    /// Stencil buffer.
    Stencil,
    /// Offscreen render target (potential dynamic texture).
    RenderTarget,
    /// The back buffer rendering happens into.
    BackBuffer,
    /// The front buffer the display engine consumes.
    FrontBuffer,
    /// Shader code / constants.
    Constants,
}

/// A 2D surface stored as 64-byte blocks, each covering a 4×4 tile of
/// 32-bit texels/pixels (the 2D tiling GPUs use so that screen-space tiles
/// touch few memory blocks).
///
/// # Example
///
/// ```
/// use grsynth::{Surface, SurfaceAllocator, SurfaceKind};
///
/// let mut alloc = SurfaceAllocator::new();
/// let s = alloc.alloc(SurfaceKind::RenderTarget, 64, 64);
/// assert_eq!(s.width_blocks(), 16);
/// assert_eq!(s.total_blocks(), 256);
/// // Pixels in the same 4x4 tile share a block.
/// assert_eq!(s.block_at_pixel(0, 0), s.block_at_pixel(3, 3));
/// assert_ne!(s.block_at_pixel(0, 0), s.block_at_pixel(4, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Surface {
    kind: SurfaceKind,
    base: u64,
    width: u32,
    height: u32,
}

impl Surface {
    /// Pixels per block edge (4×4 pixels of 4 bytes = 64 bytes).
    pub const PIXELS_PER_BLOCK_EDGE: u32 = 4;

    /// The surface kind.
    pub fn kind(&self) -> SurfaceKind {
        self.kind
    }

    /// Base byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Width in blocks (4-pixel granularity, rounded up).
    pub fn width_blocks(&self) -> u32 {
        self.width.div_ceil(Self::PIXELS_PER_BLOCK_EDGE)
    }

    /// Height in blocks.
    pub fn height_blocks(&self) -> u32 {
        self.height.div_ceil(Self::PIXELS_PER_BLOCK_EDGE)
    }

    /// Number of 64-byte blocks the surface occupies.
    pub fn total_blocks(&self) -> u64 {
        u64::from(self.width_blocks()) * u64::from(self.height_blocks())
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.total_blocks() * BLOCK_BYTES
    }

    /// Byte address of the block at block coordinates `(xb, yb)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the coordinates are out of range.
    #[inline]
    pub fn block_addr(&self, xb: u32, yb: u32) -> u64 {
        debug_assert!(xb < self.width_blocks() && yb < self.height_blocks());
        self.base + (u64::from(yb) * u64::from(self.width_blocks()) + u64::from(xb)) * BLOCK_BYTES
    }

    /// Byte address of the block containing pixel `(x, y)` (clamped to the
    /// surface).
    #[inline]
    pub fn block_at_pixel(&self, x: u32, y: u32) -> u64 {
        let xb = (x / Self::PIXELS_PER_BLOCK_EDGE).min(self.width_blocks() - 1);
        let yb = (y / Self::PIXELS_PER_BLOCK_EDGE).min(self.height_blocks() - 1);
        self.block_addr(xb, yb)
    }

    /// Byte address of the `i`-th block in row-major order.
    #[inline]
    pub fn block_by_index(&self, i: u64) -> u64 {
        debug_assert!(i < self.total_blocks());
        self.base + i * BLOCK_BYTES
    }
}

/// Bump allocator laying surfaces out in a flat physical address space.
///
/// Surfaces are aligned to 16 KB so that a SHiP-mem region (16 KB) never
/// spans two surfaces, matching how real drivers align allocations.
#[derive(Debug, Clone)]
pub struct SurfaceAllocator {
    next: u64,
}

const ALIGN: u64 = 16 * 1024;

impl SurfaceAllocator {
    /// Creates an allocator starting at a non-zero base (so address 0 is
    /// never a valid surface byte).
    pub fn new() -> Self {
        SurfaceAllocator { next: ALIGN }
    }

    /// Allocates a `width` × `height` pixel surface.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn alloc(&mut self, kind: SurfaceKind, width: u32, height: u32) -> Surface {
        assert!(width > 0 && height > 0, "surface dimensions must be non-zero");
        let s = Surface { kind, base: self.next, width, height };
        self.next += s.size_bytes();
        self.next = self.next.div_ceil(ALIGN) * ALIGN;
        s
    }

    /// Allocates a 1D buffer of `bytes` bytes, exposed as a 1-row surface
    /// of 4-byte elements.
    pub fn alloc_linear(&mut self, kind: SurfaceKind, bytes: u64) -> Surface {
        let elems = (bytes / 4).max(1) as u32;
        // Lay the buffer out as a 4-pixel-tall strip so that consecutive
        // elements advance through blocks linearly.
        self.alloc(kind, elems.div_ceil(4).max(1), 4)
    }

    /// Next free address (for tests).
    pub fn watermark(&self) -> u64 {
        self.next
    }
}

impl Default for SurfaceAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surfaces_do_not_overlap() {
        let mut a = SurfaceAllocator::new();
        let s1 = a.alloc(SurfaceKind::Depth, 100, 100);
        let s2 = a.alloc(SurfaceKind::RenderTarget, 64, 64);
        assert!(s1.base() + s1.size_bytes() <= s2.base());
    }

    #[test]
    fn alignment_is_16kb() {
        let mut a = SurfaceAllocator::new();
        let s1 = a.alloc(SurfaceKind::Depth, 4, 4); // one block
        let s2 = a.alloc(SurfaceKind::Depth, 4, 4);
        assert_eq!(s1.base() % ALIGN, 0);
        assert_eq!(s2.base() % ALIGN, 0);
        assert_eq!(s2.base() - s1.base(), ALIGN);
    }

    #[test]
    fn block_addressing_is_dense_and_unique() {
        let mut a = SurfaceAllocator::new();
        let s = a.alloc(SurfaceKind::RenderTarget, 32, 16);
        let mut seen = std::collections::HashSet::new();
        for yb in 0..s.height_blocks() {
            for xb in 0..s.width_blocks() {
                assert!(seen.insert(s.block_addr(xb, yb)));
            }
        }
        assert_eq!(seen.len() as u64, s.total_blocks());
        assert!(seen.iter().all(|&addr| addr >= s.base() && addr < s.base() + s.size_bytes()));
    }

    #[test]
    fn non_multiple_of_four_dimensions_round_up() {
        let mut a = SurfaceAllocator::new();
        let s = a.alloc(SurfaceKind::Depth, 5, 9);
        assert_eq!(s.width_blocks(), 2);
        assert_eq!(s.height_blocks(), 3);
        // Clamping keeps edge pixels in range.
        let _ = s.block_at_pixel(4, 8);
    }

    #[test]
    fn linear_buffer_walks_blocks_sequentially() {
        let mut a = SurfaceAllocator::new();
        let s = a.alloc_linear(SurfaceKind::VertexBuffer, 1024);
        assert_eq!(s.block_by_index(1) - s.block_by_index(0), 64);
        assert_eq!(s.size_bytes() % 64, 0);
        assert!(s.size_bytes() >= 1024);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        SurfaceAllocator::new().alloc(SurfaceKind::Depth, 0, 7);
    }
}
