//! Synthetic DirectX-style 3D frame rendering workloads.
//!
//! The paper evaluates on 52 frames captured from eight DirectX games and
//! four benchmark applications — proprietary traces we cannot obtain. This
//! crate synthesizes the closest equivalent: a parameterized model of the
//! DirectX 10/11 rendering pipeline that emits raw per-stage memory
//! accesses (input assembly, depth pre-pass, HiZ/Z testing, pixel shading
//! with static and *dynamic* texturing, blending, post-processing, and
//! present), filters them through the paper's render-cache hierarchy
//! ([`grcache::RenderCaches`]), and yields the LLC access [`Trace`] for one
//! frame.
//!
//! Each of the twelve [`AppProfile`]s keeps the real application's
//! resolution and DirectX version (Table 1) and adds reuse knobs —
//! render-target → texture consumption rate, static texture working-set
//! size, overdraw, blending — calibrated so the synthesized traces
//! reproduce the paper's characterization: the stream mix of Figure 4, the
//! dynamic-texturing inter-stream reuse of Figure 6, and the epoch death
//! ratios of Figures 7 and 9.
//!
//! # Example
//!
//! ```
//! use grsynth::{AppProfile, Scale};
//!
//! let apps = AppProfile::all();
//! assert_eq!(apps.len(), 12);
//! let total_frames: u32 = apps.iter().map(|a| a.frames).sum();
//! assert_eq!(total_frames, 52);
//!
//! let trace = grsynth::generate_frame(&apps[0], 0, Scale::Tiny);
//! assert!(!trace.is_empty());
//! ```

mod frame;
mod generator;
mod graph;
mod profile;
mod profiles;
pub mod rng;
mod stream;
mod surface;

pub use frame::{FrameRenderer, FrameWork};
pub use generator::{generate_frame, workload_frames, FrameJob};
pub use graph::{collect_graph_stream, FrameGraph, GraphRenderer, GraphStream, PassKind};
pub use profile::{AppProfile, Scale};
pub use profiles::{graph_profile, GraphProfile, GRAPH_PROFILES};
pub use stream::{collect_stream, FrameStream};
pub use surface::{Surface, SurfaceAllocator, SurfaceKind};

pub use grtrace::Trace;
