//! Composable frame-graph workload synthesis.
//!
//! [`FrameGraph`] describes one frame of a *modern* rendering pipeline as
//! an ordered list of typed passes — depth pre-pass, shadow-map render
//! (consumed much later as a sampled texture), deferred G-buffer fill and
//! resolve, forward shading, post-process ping-pong chains, GPU-driven
//! indirect draw bursts, and stream-free compute kernels. A graph compiles
//! down to the same staged machinery as [`FrameRenderer`]: accesses are
//! filtered through [`grcache::RenderCaches`], emitted band by band over
//! the same number of stages, and hand out through the [`AccessSource`]
//! chunk protocol via [`GraphStream`] — bit-identical streamed or
//! materialized.
//!
//! The **coherence knob** (0..=1) controls how much of the per-frame
//! working set recurs frame to frame: at 1.0 consecutive frames touch the
//! same texture regions, geometry window, and compute hot set (maximal
//! persistent-LLC reuse); at 0.0 the working set drifts far each frame, so
//! `grsim sequence` observes warm-over-cold savings decaying with the
//! knob.
//!
//! [`FrameRenderer`]: crate::FrameRenderer

use std::io;

use grcache::RenderCaches;
use grtrace::{Access, AccessSource, Chunk, StreamId, StreamStats, Trace};

use crate::frame::FrameWork;
use crate::rng::{frame_rng, zipf_rank, FrameRng};
use crate::{Scale, Surface, SurfaceAllocator, SurfaceKind};

/// Pixels per screen tile edge (8×8-pixel tiles, 2×2 surface blocks).
const TILE_PX: u32 = 8;
/// Static-texture "material region" size in blocks (4 KB regions).
const TEX_REGION_BLOCKS: u64 = 64;
/// Bands the deferred resolve trails G-buffer production by: half the
/// frame, so most G-buffer consumption is far-flung PROD/CONS reuse.
const DEFERRED_LAG: u32 = 4;

/// One typed pass in a [`FrameGraph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PassKind {
    /// Geometry-only depth pre-pass laying down HiZ and Z.
    ZPrepass,
    /// Depth-only render into shadow cascade `cascade` (resolution halves
    /// per cascade); later passes sample the map as a texture — the
    /// Z-produced / TEX-consumed cross-stream reuse.
    ShadowMap {
        /// Cascade index (0 = largest map).
        cascade: u32,
    },
    /// Deferred G-buffer fill: depth test plus `targets` simultaneous
    /// full-resolution render-target writes per tile.
    GBuffer {
        /// Simultaneously bound MRT targets (1..=8).
        targets: u32,
    },
    /// Deferred resolve: reads the *entire* G-buffer (written half a frame
    /// earlier) and any shadow maps as textures, lights into the back
    /// buffer.
    DeferredLighting,
    /// Forward shading pass sampling static textures and shadow maps.
    Forward {
        /// Average fragments per pixel (1.0..=2.0).
        overdraw: f64,
    },
    /// Post-process chain: `passes` full-screen RT→TEX ping-pong hops
    /// ending back in the back buffer.
    PostFx {
        /// Chain length (>= 1).
        passes: u32,
    },
    /// GPU-driven rendering: per band, `bursts` multi-draw-indirect bursts
    /// each fetching args (Other) then streaming an index/vertex run from
    /// a random offset.
    IndirectDraws {
        /// Draw bursts per render band (>= 1).
        bursts: u32,
    },
    /// Stream-free CPU/graph-analytics kernel over a linear buffer of
    /// `2^footprint_log2` bytes (scaled like textures): a streaming scan
    /// mixed with zipf-distributed pointer chasing at rate `chase`. Every
    /// access is [`StreamId::Other`].
    Compute {
        /// log2 of the full-scale working-set bytes (16..=32).
        footprint_log2: u32,
        /// Pointer-chase probes per scanned block (0..=1).
        chase: f64,
    },
    /// Present: read the back buffer, write the displayable color stream.
    /// Must be the last pass when present.
    Present,
}

/// A validated description of one frame's render passes plus the
/// inter-frame coherence knob.
///
/// # Example
///
/// ```
/// use grsynth::{FrameGraph, GraphRenderer, PassKind, Scale};
///
/// let graph = FrameGraph::new("mini-deferred", 640, 360)
///     .pass(PassKind::ZPrepass)
///     .pass(PassKind::GBuffer { targets: 2 })
///     .pass(PassKind::DeferredLighting)
///     .pass(PassKind::Present);
/// graph.validate().unwrap();
/// let trace = GraphRenderer::new(&graph, 0, Scale::Tiny).render();
/// assert_eq!(trace.app(), "mini-deferred");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrameGraph {
    name: String,
    width: u32,
    height: u32,
    texture_mb: u64,
    triangles_k: u32,
    coherence: f64,
    seed: u64,
    passes: Vec<PassKind>,
}

/// FNV-1a over `bytes`, folded into `h`.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FrameGraph {
    /// Starts a graph named `name` at full-scale resolution
    /// `width`×`height` with no passes, coherence 1.0, and a seed derived
    /// from the name. Chain [`FrameGraph::pass`] and the other builder
    /// methods, then [`FrameGraph::validate`].
    pub fn new(name: &str, width: u32, height: u32) -> Self {
        FrameGraph {
            name: name.to_string(),
            width,
            height,
            texture_mb: 64,
            triangles_k: 512,
            coherence: 1.0,
            seed: fnv1a(0xCBF2_9CE4_8422_2325, name.as_bytes()),
            passes: Vec::new(),
        }
    }

    /// Appends a pass.
    pub fn pass(mut self, p: PassKind) -> Self {
        self.passes.push(p);
        self
    }

    /// Sets the full-scale static-texture footprint in megabytes.
    pub fn texture_mb(mut self, mb: u64) -> Self {
        self.texture_mb = mb;
        self
    }

    /// Sets the scene complexity in thousands of triangles.
    pub fn triangles_k(mut self, k: u32) -> Self {
        self.triangles_k = k;
        self
    }

    /// Sets the inter-frame coherence knob (0 = working set drifts far
    /// each frame, 1 = frames touch the same working set).
    pub fn coherence(mut self, c: f64) -> Self {
        self.coherence = c;
        self
    }

    /// Overrides the synthesis seed (defaults to a hash of the name).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The graph name — also the `app` identity of every trace it emits.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The coherence knob value.
    pub fn frame_coherence(&self) -> f64 {
        self.coherence
    }

    /// The pass list.
    pub fn passes(&self) -> &[PassKind] {
        &self.passes
    }

    /// Coherence quantized to per-mille, the precision actually used by
    /// the synthesis (and by canonical job specs, dodging float
    /// formatting).
    pub fn coherence_milli(&self) -> u64 {
        (self.coherence.clamp(0.0, 1.0) * 1000.0).round() as u64
    }

    /// Checks the graph is well-formed.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty()
            || !self.name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "graph name {:?} must be non-empty [A-Za-z0-9_-] (it names traces and cache files)",
                self.name
            ));
        }
        if self.width < 64 || self.height < 64 {
            return Err("frame graph dimensions must be at least 64x64".into());
        }
        if !(0.0..=1.0).contains(&self.coherence) {
            return Err("coherence must be within 0..=1".into());
        }
        if self.texture_mb == 0 || self.texture_mb > 4096 {
            return Err("texture_mb must be in 1..=4096".into());
        }
        if self.passes.is_empty() {
            return Err("frame graph needs at least one pass".into());
        }
        let mut saw_gbuffer = false;
        for (i, p) in self.passes.iter().enumerate() {
            match *p {
                PassKind::ShadowMap { cascade } if cascade >= 8 => {
                    return Err("ShadowMap cascade must be in 0..8".into());
                }
                PassKind::GBuffer { targets } if !(1..=8).contains(&targets) => {
                    return Err("GBuffer targets must be in 1..=8".into());
                }
                PassKind::GBuffer { .. } => saw_gbuffer = true,
                PassKind::DeferredLighting if !saw_gbuffer => {
                    return Err("DeferredLighting requires an earlier GBuffer pass".into());
                }
                PassKind::Forward { overdraw } if !(1.0..=2.0).contains(&overdraw) => {
                    return Err("Forward overdraw must be in 1..=2".into());
                }
                PassKind::PostFx { passes } if !(1..=16).contains(&passes) => {
                    return Err("PostFx passes must be in 1..=16".into());
                }
                PassKind::IndirectDraws { bursts } if !(1..=4096).contains(&bursts) => {
                    return Err("IndirectDraws bursts must be in 1..=4096".into());
                }
                PassKind::Compute { footprint_log2, chase } => {
                    if !(16..=32).contains(&footprint_log2) {
                        return Err("Compute footprint_log2 must be in 16..=32".into());
                    }
                    if !(0.0..=1.0).contains(&chase) {
                        return Err("Compute chase must be in 0..=1".into());
                    }
                }
                PassKind::Present if i + 1 != self.passes.len() => {
                    return Err("Present must be the last pass".into());
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// A structural fingerprint covering every knob that shapes emission;
    /// two graphs with equal fingerprints emit identical traces.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(0xCBF2_9CE4_8422_2325, self.name.as_bytes());
        for v in [
            u64::from(self.width),
            u64::from(self.height),
            self.texture_mb,
            u64::from(self.triangles_k),
            self.coherence_milli(),
            self.seed,
        ] {
            h = fnv1a(h, &v.to_le_bytes());
        }
        for p in &self.passes {
            let (tag, a, b): (u8, u64, u64) = match *p {
                PassKind::ZPrepass => (1, 0, 0),
                PassKind::ShadowMap { cascade } => (2, u64::from(cascade), 0),
                PassKind::GBuffer { targets } => (3, u64::from(targets), 0),
                PassKind::DeferredLighting => (4, 0, 0),
                PassKind::Forward { overdraw } => (5, (overdraw * 1000.0).round() as u64, 0),
                PassKind::PostFx { passes } => (6, u64::from(passes), 0),
                PassKind::IndirectDraws { bursts } => (7, u64::from(bursts), 0),
                PassKind::Compute { footprint_log2, chase } => {
                    (8, u64::from(footprint_log2), (chase * 1000.0).round() as u64)
                }
                PassKind::Present => (9, 0, 0),
            };
            h = fnv1a(h, &[tag]);
            h = fnv1a(h, &a.to_le_bytes());
            h = fnv1a(h, &b.to_le_bytes());
        }
        h
    }

    /// A filesystem-safe identity for trace-cache keys and file stems.
    pub fn cache_key(&self) -> String {
        format!("g-{}-{:016x}", self.name, self.fingerprint())
    }

    /// Scaled frame width, mirroring [`AppProfile::scaled_width`].
    ///
    /// [`AppProfile::scaled_width`]: crate::AppProfile::scaled_width
    pub fn scaled_width(&self, scale: Scale) -> u32 {
        (self.width / scale.divisor()).max(64)
    }

    /// Scaled frame height.
    pub fn scaled_height(&self, scale: Scale) -> u32 {
        (self.height / scale.divisor()).max(64)
    }

    /// Scaled static-texture bytes (shrinks with the divisor squared).
    pub fn scaled_texture_bytes(&self, scale: Scale) -> u64 {
        let d2 = u64::from(scale.divisor()) * u64::from(scale.divisor());
        self.texture_mb * 1024 * 1024 / d2
    }
}

/// How far a frame-indexed working-set origin drifts at this coherence:
/// zero at full coherence, about a third of the space per frame at zero.
fn drift(frame: u32, milli: u64, modulus: u64) -> u64 {
    if modulus <= 1 {
        return 0;
    }
    u64::from(frame) * (modulus / 3 + 1) % modulus * (1000 - milli) / 1000 % modulus
}

/// Renders one frame of a [`FrameGraph`] through the render caches.
#[derive(Debug)]
pub struct GraphRenderer<'a> {
    graph: &'a FrameGraph,
    frame_idx: u32,
    milli: u64,
    rng: FrameRng,
    caches: RenderCaches,
    trace: Trace,
    has_zprepass: bool,
    back: Surface,
    front: Surface,
    depth: Surface,
    hiz: Surface,
    static_tex: Surface,
    /// One depth surface per `ShadowMap` pass, in pass order.
    shadow: Vec<Surface>,
    /// G-buffer MRT targets (max `targets` over `GBuffer` passes).
    gbuffer: Vec<Surface>,
    pingpong: Option<[Surface; 2]>,
    vertices: Surface,
    indices: Surface,
    indirect_args: Option<Surface>,
    compute_buf: Option<Surface>,
    constants: Surface,
    tex_walk: u64,
    geom_shift: u64,
    compute_origin: u64,
    work: FrameWork,
}

impl<'a> GraphRenderer<'a> {
    /// Prepares surfaces and caches for frame `frame_idx` of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `graph.validate()` fails.
    pub fn new(graph: &'a FrameGraph, frame_idx: u32, scale: Scale) -> Self {
        if let Err(e) = graph.validate() {
            panic!("invalid frame graph: {e}");
        }
        let width = graph.scaled_width(scale);
        let height = graph.scaled_height(scale);
        let mut alloc = SurfaceAllocator::new();
        let back = alloc.alloc(SurfaceKind::BackBuffer, width, height);
        let front = alloc.alloc(SurfaceKind::FrontBuffer, width, height);
        // Depth and HiZ are 2:1 compressed, exactly as in FrameRenderer.
        let depth = alloc.alloc(SurfaceKind::Depth, width, (height / 2).max(4));
        let hiz = alloc.alloc(SurfaceKind::HiZ, width.max(4), (height / 2).max(4));
        let tex_bytes = graph.scaled_texture_bytes(scale).max(64 * 1024);
        let tex_side_blocks = ((tex_bytes / 64) as f64).sqrt().ceil() as u32;
        let static_tex = alloc.alloc(
            SurfaceKind::StaticTexture,
            tex_side_blocks * Surface::PIXELS_PER_BLOCK_EDGE,
            tex_side_blocks * Surface::PIXELS_PER_BLOCK_EDGE,
        );
        let mut shadow = Vec::new();
        let mut gbuffer_targets = 0;
        let mut want_pingpong = false;
        let mut want_args = false;
        let mut compute_log2 = None;
        let mut has_zprepass = false;
        for p in &graph.passes {
            match *p {
                PassKind::ZPrepass => has_zprepass = true,
                PassKind::ShadowMap { cascade } => {
                    // Square depth-only map, resolution halving per cascade.
                    let dim = (height >> cascade).max(32);
                    shadow.push(alloc.alloc(SurfaceKind::Depth, dim, (dim / 2).max(4)));
                }
                PassKind::GBuffer { targets } => gbuffer_targets = gbuffer_targets.max(targets),
                PassKind::PostFx { .. } => want_pingpong = true,
                PassKind::IndirectDraws { .. } => want_args = true,
                PassKind::Compute { footprint_log2, .. } => compute_log2 = Some(footprint_log2),
                _ => {}
            }
        }
        let gbuffer = (0..gbuffer_targets)
            .map(|_| alloc.alloc(SurfaceKind::RenderTarget, width, height))
            .collect();
        let pingpong = want_pingpong.then(|| {
            [
                alloc.alloc(SurfaceKind::RenderTarget, width, height),
                alloc.alloc(SurfaceKind::RenderTarget, width, height),
            ]
        });
        let d2 = u64::from(scale.divisor()) * u64::from(scale.divisor());
        let vertices = alloc.alloc_linear(
            SurfaceKind::VertexBuffer,
            (u64::from(graph.triangles_k) * 1024 * 4 / d2).max(4096),
        );
        let indices = alloc.alloc_linear(SurfaceKind::IndexBuffer, vertices.size_bytes() / 8);
        let indirect_args =
            want_args.then(|| alloc.alloc_linear(SurfaceKind::Constants, 64 * 1024));
        let compute_buf = compute_log2
            .map(|f| alloc.alloc_linear(SurfaceKind::Constants, ((1u64 << f) / d2).max(64 * 1024)));
        let constants = alloc.alloc_linear(SurfaceKind::Constants, 64 * 1024);
        let milli = graph.coherence_milli();
        let regions = (static_tex.total_blocks() / TEX_REGION_BLOCKS).max(1);
        let compute_blocks = compute_buf.map_or(1, |b| b.total_blocks());
        GraphRenderer {
            graph,
            frame_idx,
            milli,
            rng: frame_rng(graph.seed, frame_idx),
            caches: RenderCaches::new(),
            trace: Trace::with_capacity(&graph.name, frame_idx, 1 << 18),
            has_zprepass,
            back,
            front,
            depth,
            hiz,
            static_tex,
            shadow,
            gbuffer,
            pingpong,
            vertices,
            indices,
            indirect_args,
            compute_buf,
            constants,
            tex_walk: drift(frame_idx, milli, regions),
            geom_shift: drift(frame_idx, milli, vertices.total_blocks()),
            compute_origin: drift(frame_idx, milli, compute_blocks),
            work: FrameWork::default(),
        }
    }

    /// Runs every stage and returns the LLC trace.
    pub fn render(self) -> Trace {
        self.render_with_work().0
    }

    /// Renders the frame, returning the trace and the work counters.
    pub fn render_with_work(mut self) -> (Trace, FrameWork) {
        for s in 0..Self::STAGES {
            self.run_stage(s);
        }
        (self.trace, self.work)
    }

    /// Stage count: the eight render bands plus the tail (trailing
    /// deferred resolve, present, cache flush) — the same staged protocol
    /// as `FrameRenderer`.
    pub(crate) const STAGES: u32 = Self::BANDS + 1;
    const BANDS: u32 = 8;

    /// Runs pipeline stage `s` (`0..STAGES`) — stages must run in order,
    /// each exactly once, exactly as in `FrameRenderer::run_stage`.
    pub(crate) fn run_stage(&mut self, s: u32) {
        debug_assert!(s < Self::STAGES, "stage out of range");
        const BANDS: u32 = GraphRenderer::BANDS;
        let passes = self.graph.passes.clone();
        if s < BANDS {
            let mut shadow_idx = 0usize;
            for p in &passes {
                match *p {
                    PassKind::ZPrepass => self.z_prepass(s, BANDS),
                    PassKind::ShadowMap { .. } => {
                        self.shadow_render(shadow_idx, s, BANDS);
                        shadow_idx += 1;
                    }
                    PassKind::GBuffer { targets } => self.gbuffer_fill(targets, s, BANDS),
                    PassKind::DeferredLighting => {
                        // The resolve trails fill by half the frame.
                        if s >= DEFERRED_LAG {
                            self.deferred_resolve(s - DEFERRED_LAG, BANDS);
                        }
                    }
                    PassKind::Forward { overdraw } => self.forward(overdraw, s, BANDS),
                    PassKind::PostFx { passes } => self.postfx_chain(passes, s, BANDS),
                    PassKind::IndirectDraws { bursts } => self.indirect_draws(bursts, s),
                    PassKind::Compute { chase, .. } => self.compute(chase, s, BANDS),
                    PassKind::Present => {}
                }
            }
        } else {
            for p in &passes {
                match *p {
                    PassKind::DeferredLighting => {
                        for b in (BANDS - DEFERRED_LAG)..BANDS {
                            self.deferred_resolve(b, BANDS);
                        }
                    }
                    PassKind::Present => self.present(),
                    _ => {}
                }
            }
            self.caches.flush(&mut self.trace);
        }
    }

    /// Drains the accesses emitted so far (streaming hand-off).
    pub(crate) fn take_emitted(&mut self) -> Vec<Access> {
        self.trace.take_accesses()
    }

    /// Work counters accumulated so far.
    pub(crate) fn work(&self) -> FrameWork {
        self.work
    }

    /// The trace being accumulated.
    pub(crate) fn trace(&self) -> &Trace {
        &self.trace
    }

    #[inline]
    fn emit(&mut self, addr: u64, stream: StreamId, write: bool) {
        let access = if write { Access::store(addr, stream) } else { Access::load(addr, stream) };
        self.work.raw_accesses += 1;
        self.caches.filter(access, &mut self.trace);
    }

    /// The four surface blocks covered by tile `(tx, ty)`.
    fn tile_blocks(surface: &Surface, tx: u32, ty: u32) -> [u64; 4] {
        let px = tx * TILE_PX;
        let py = ty * TILE_PX;
        [
            surface.block_at_pixel(px, py),
            surface.block_at_pixel(px + 4, py),
            surface.block_at_pixel(px, py + 4),
            surface.block_at_pixel(px + 4, py + 4),
        ]
    }

    fn tiles_of(surface: &Surface) -> (u32, u32) {
        (surface.width().div_ceil(TILE_PX), surface.height().div_ceil(TILE_PX))
    }

    /// The two blocks a tile covers on a 2:1-compressed surface (depth,
    /// HiZ, shadow maps).
    fn half_blocks(surface: &Surface, tx: u32, ty: u32) -> [u64; 2] {
        let x0 = (tx * TILE_PX).min(surface.width() - 1);
        let x1 = (tx * TILE_PX + 4).min(surface.width() - 1);
        let y = (ty * TILE_PX / 2).min(surface.height() - 1);
        [surface.block_at_pixel(x0, y), surface.block_at_pixel(x1, y)]
    }

    /// The tile-row band `[start, end)` for chunk `s` of `chunks`.
    fn band(th: u32, s: u32, chunks: u32) -> (u32, u32) {
        (th * s / chunks, th * (s + 1) / chunks)
    }

    /// Deterministic per-block consumption gate at `rate_milli`/1000.
    fn gate(&self, block_addr: u64, rate_milli: u64) -> bool {
        let mut h = block_addr ^ self.graph.seed;
        h = (h ^ (h >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h % 1000 < rate_milli
    }

    /// Remaps a texture region: a `(1 - coherence)` fraction of regions
    /// shifts to a frame-unique neighborhood, so that fraction of the
    /// texture working set never recurs across frames.
    fn perturb_region(&self, region: u64, regions: u64) -> u64 {
        if self.milli >= 1000 || regions <= 1 {
            return region % regions;
        }
        let mut h = region ^ self.graph.seed.rotate_left(17);
        h = (h ^ (h >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        if h % 1000 >= self.milli {
            // Frame-keyed rehash: the region lands somewhere unrelated
            // each frame, so it never contributes inter-frame reuse.
            let mut k = region
                ^ self.graph.seed
                ^ u64::from(self.frame_idx).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            k = (k ^ (k >> 29)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
            k ^= k >> 32;
            k % regions
        } else {
            region % regions
        }
    }

    /// Samples `footprint` static-texture blocks into `out`: a drifting
    /// region walk (origin set by the coherence drift) plus a small
    /// frame-invariant hot set, with the coherence perturbation applied to
    /// walked regions.
    fn sample_texture(&mut self, footprint: usize, out: &mut Vec<u64>) {
        let regions = (self.static_tex.total_blocks() / TEX_REGION_BLOCKS).max(1);
        let region = if self.rng.gen_bool(0.02) {
            // Persistently hot regions (UI atlases, LUTs): coherent by
            // nature, never perturbed.
            (self.rng.next_u64() % 8) * 997 % regions
        } else {
            self.tex_walk = self.tex_walk.wrapping_add(1);
            let walked = (self.tex_walk + zipf_rank(&mut self.rng, 24) as u64) % regions;
            self.perturb_region(walked, regions)
        };
        let base = region * TEX_REGION_BLOCKS;
        let total = self.static_tex.total_blocks();
        for i in 0..footprint as u64 {
            let b = if i % 3 < 2 {
                base + (i - i / 3) % TEX_REGION_BLOCKS
            } else {
                base + self.rng.next_u64() % TEX_REGION_BLOCKS
            };
            out.push(self.static_tex.block_by_index(b % total));
        }
        self.work.texel_samples += footprint as u64 * 4;
    }

    /// Input-assembler traffic for a pass covering `fraction` of the
    /// scene; the window origin drifts per frame with the coherence knob.
    fn geometry(&mut self, fraction: f64) {
        let idx_blocks = (self.indices.total_blocks() as f64 * fraction) as u64;
        let vtx_blocks = (self.vertices.total_blocks() as f64 * fraction) as u64;
        let ib = self.indices.total_blocks();
        let vb = self.vertices.total_blocks();
        let shift = self.geom_shift;
        for i in 0..idx_blocks {
            let addr = self.indices.block_by_index((shift + i) % ib);
            self.emit(addr, StreamId::VertexIndex, false);
        }
        self.work.vertices += vtx_blocks * 4;
        for i in 0..vtx_blocks {
            let addr = self.vertices.block_by_index((shift + i) % vb);
            self.emit(addr, StreamId::Vertex, false);
            if i > 4 && self.rng.gen_bool(0.3) {
                let back = 1 + self.rng.next_u64() % 4;
                let addr = self.vertices.block_by_index((shift + i - back) % vb);
                self.emit(addr, StreamId::Vertex, false);
            }
        }
        let total = self.constants.total_blocks();
        let cbase = self.rng.next_u64() % total;
        for i in 0..32 {
            let addr = self.constants.block_by_index((cbase + i) % total);
            self.emit(addr, StreamId::Other, false);
        }
    }

    /// Depth pre-pass band: HiZ read/write, first-touch Z writes.
    fn z_prepass(&mut self, s: u32, bands: u32) {
        self.geometry(0.8 / f64::from(bands));
        let (tw, th) = Self::tiles_of(&self.back);
        let (y0, y1) = Self::band(th, s, bands);
        for ty in y0..y1 {
            for tx in 0..tw {
                for hb in Self::half_blocks(&self.hiz, tx, ty) {
                    self.emit(hb, StreamId::HiZ, false);
                    self.emit(hb, StreamId::HiZ, true);
                }
                for b in Self::half_blocks(&self.depth, tx, ty) {
                    self.emit(b, StreamId::Z, true);
                }
            }
        }
    }

    /// Depth-only shadow-map render band for cascade surface `i`.
    fn shadow_render(&mut self, i: usize, s: u32, bands: u32) {
        self.geometry(0.3 / f64::from(bands));
        let sm = self.shadow[i];
        let tw = sm.width().div_ceil(TILE_PX);
        let th = (sm.height() * 2).div_ceil(TILE_PX);
        let (y0, y1) = Self::band(th, s, bands);
        for ty in y0..y1 {
            for tx in 0..tw {
                // Overlapping casters re-test previously written depth.
                let reread = self.rng.gen_bool(0.3);
                for b in Self::half_blocks(&sm, tx, ty) {
                    if reread {
                        self.emit(b, StreamId::Z, false);
                    }
                    self.emit(b, StreamId::Z, true);
                }
            }
        }
    }

    /// Samples the shadow map `si` where screen tile `(tx, ty)` lands,
    /// with a PCF neighborhood tap — Z-stream-produced blocks consumed as
    /// textures, far from their production.
    fn sample_shadow(&mut self, si: usize, tx: u32, ty: u32, tw: u32, th: u32) {
        let sm = self.shadow[si];
        let stw = sm.width().div_ceil(TILE_PX);
        let sth = (sm.height() * 2).div_ceil(TILE_PX);
        let sx = (tx * stw / tw.max(1)).min(stw - 1);
        let sy = (ty * sth / th.max(1)).min(sth - 1);
        for b in Self::half_blocks(&sm, sx, sy) {
            if self.gate(b, 700) {
                self.emit(b, StreamId::Texture, false);
            }
        }
        if self.rng.gen_bool(0.5) {
            let nx = (sx + 1).min(stw - 1);
            for b in Self::half_blocks(&sm, nx, sy) {
                if self.gate(b, 700) {
                    self.emit(b, StreamId::Texture, false);
                }
            }
        }
    }

    /// G-buffer fill band: depth test plus `targets` MRT writes per tile.
    fn gbuffer_fill(&mut self, targets: u32, s: u32, bands: u32) {
        self.geometry(1.0 / f64::from(bands));
        let gbuf = self.gbuffer.clone();
        let (tw, th) = Self::tiles_of(&self.back);
        let (y0, y1) = Self::band(th, s, bands);
        let mut tex = Vec::with_capacity(8);
        for ty in y0..y1 {
            for tx in 0..tw {
                for hb in Self::half_blocks(&self.hiz, tx, ty) {
                    self.emit(hb, StreamId::HiZ, false);
                    if !self.has_zprepass {
                        self.emit(hb, StreamId::HiZ, true);
                    }
                }
                for b in Self::half_blocks(&self.depth, tx, ty) {
                    self.emit(b, StreamId::Z, false);
                    if !self.has_zprepass {
                        self.emit(b, StreamId::Z, true);
                    }
                }
                self.work.shaded_pixels += u64::from(TILE_PX * TILE_PX);
                tex.clear();
                self.sample_texture(6, &mut tex);
                for &b in tex.iter() {
                    self.emit(b, StreamId::Texture, false);
                }
                for target in gbuf.iter().take(targets as usize) {
                    for b in Self::tile_blocks(target, tx, ty) {
                        self.emit(b, StreamId::RenderTarget, true);
                    }
                }
            }
        }
    }

    /// Deferred resolve of back-buffer band `band_idx`: full G-buffer and
    /// shadow-map consumption, lit into the back buffer.
    fn deferred_resolve(&mut self, band_idx: u32, bands: u32) {
        self.geometry(0.05 / f64::from(bands));
        let gbuf = self.gbuffer.clone();
        let nshadow = self.shadow.len();
        let (tw, th) = Self::tiles_of(&self.back);
        let (y0, y1) = Self::band(th, band_idx, bands);
        let mut tex = Vec::with_capacity(4);
        for ty in y0..y1 {
            for tx in 0..tw {
                self.work.shaded_pixels += u64::from(TILE_PX * TILE_PX);
                // The resolve reads every G-buffer texel exactly once —
                // total RT→TEX consumption, the strongest PROD/CONS case.
                for target in gbuf.iter() {
                    for b in Self::tile_blocks(target, tx, ty) {
                        self.emit(b, StreamId::Texture, false);
                    }
                }
                for si in 0..nshadow {
                    self.sample_shadow(si, tx, ty, tw, th);
                }
                tex.clear();
                self.sample_texture(2, &mut tex);
                for &b in tex.iter() {
                    self.emit(b, StreamId::Texture, false);
                }
                for b in Self::tile_blocks(&self.back, tx, ty) {
                    self.emit(b, StreamId::RenderTarget, false);
                    self.emit(b, StreamId::RenderTarget, true);
                }
            }
        }
    }

    /// Forward shading band with overdraw, static textures, shadow maps.
    fn forward(&mut self, overdraw: f64, s: u32, bands: u32) {
        self.geometry(1.0 / f64::from(bands));
        let nshadow = self.shadow.len();
        let (tw, th) = Self::tiles_of(&self.back);
        let (y0, y1) = Self::band(th, s, bands);
        let extra = (overdraw - 1.0).clamp(0.0, 1.0);
        let mut tex = Vec::with_capacity(12);
        for ty in y0..y1 {
            for tx in 0..tw {
                for hb in Self::half_blocks(&self.hiz, tx, ty) {
                    self.emit(hb, StreamId::HiZ, false);
                    if !self.has_zprepass {
                        self.emit(hb, StreamId::HiZ, true);
                    }
                }
                let rounds = 1 + u32::from(self.rng.gen_bool(extra));
                for round in 0..rounds {
                    for b in Self::half_blocks(&self.depth, tx, ty) {
                        self.emit(b, StreamId::Z, false);
                        if !self.has_zprepass && round == 0 {
                            self.emit(b, StreamId::Z, true);
                        }
                    }
                    if round > 0 && self.rng.gen_bool(0.5) {
                        continue;
                    }
                    self.work.shaded_pixels += u64::from(TILE_PX * TILE_PX);
                    tex.clear();
                    self.sample_texture(6, &mut tex);
                    for &b in tex.iter() {
                        self.emit(b, StreamId::Texture, false);
                    }
                    for si in 0..nshadow {
                        self.sample_shadow(si, tx, ty, tw, th);
                    }
                    for b in Self::tile_blocks(&self.back, tx, ty) {
                        if self.rng.gen_bool(0.25) {
                            self.emit(b, StreamId::RenderTarget, false);
                        }
                        self.emit(b, StreamId::RenderTarget, true);
                    }
                }
            }
        }
    }

    /// One band of an `n`-hop full-screen ping-pong chain ending in the
    /// back buffer.
    fn postfx_chain(&mut self, n: u32, s: u32, bands: u32) {
        self.geometry(0.01 / f64::from(bands));
        let pp = self.pingpong.expect("validated PostFx graphs allocate ping-pong targets");
        let (tw, th) = Self::tiles_of(&self.back);
        let (y0, y1) = Self::band(th, s, bands);
        for p in 0..n {
            let src = if p == 0 { self.back } else { pp[((p - 1) % 2) as usize] };
            let dst = if p + 1 == n { self.back } else { pp[(p % 2) as usize] };
            for ty in y0..y1 {
                for tx in 0..tw {
                    for b in Self::tile_blocks(&src, tx, ty) {
                        self.emit(b, StreamId::Texture, false);
                    }
                    // Blur kernels also tap the row above.
                    if ty > y0 && self.rng.gen_bool(0.5) {
                        for b in Self::tile_blocks(&src, tx, ty - 1) {
                            self.emit(b, StreamId::Texture, false);
                        }
                    }
                    for b in Self::tile_blocks(&dst, tx, ty) {
                        self.emit(b, StreamId::RenderTarget, true);
                    }
                }
            }
        }
    }

    /// `bursts` multi-draw-indirect bursts: args fetch, then an
    /// index/vertex run from a random (coherence-shifted) offset.
    fn indirect_draws(&mut self, bursts: u32, s: u32) {
        let args = self.indirect_args.expect("validated IndirectDraws graphs allocate args");
        let atotal = args.total_blocks();
        let itotal = self.indices.total_blocks();
        let vtotal = self.vertices.total_blocks();
        let shift = self.geom_shift;
        for bi in 0..u64::from(bursts) {
            let cursor = (u64::from(s) * u64::from(bursts) + bi) % atotal;
            self.emit(args.block_by_index(cursor), StreamId::Other, false);
            // GPU culling occasionally rewrites the args in place.
            if self.rng.gen_bool(0.1) {
                self.emit(args.block_by_index(cursor), StreamId::Other, true);
            }
            let ibase = (shift + self.rng.next_u64()) % itotal;
            for i in 0..12 {
                let a = self.indices.block_by_index((ibase + i) % itotal);
                self.emit(a, StreamId::VertexIndex, false);
            }
            let vbase = (shift + self.rng.next_u64()) % vtotal;
            for i in 0..20 {
                let a = self.vertices.block_by_index((vbase + i) % vtotal);
                self.emit(a, StreamId::Vertex, false);
            }
            self.work.vertices += 20 * 4;
        }
    }

    /// Stream-free compute band: scan this band's slice of the buffer,
    /// interleaved with zipf-distributed pointer chasing over a
    /// (coherence-shifted) hot set. Everything is `StreamId::Other`.
    fn compute(&mut self, chase: f64, s: u32, bands: u32) {
        let buf = self.compute_buf.expect("validated Compute graphs allocate a buffer");
        let total = buf.total_blocks();
        let b0 = total * u64::from(s) / u64::from(bands);
        let b1 = total * u64::from(s + 1) / u64::from(bands);
        let origin = self.compute_origin;
        let hot = (total as usize).min(4096);
        for i in b0..b1 {
            self.emit(buf.block_by_index((origin + i) % total), StreamId::Other, false);
            if i % 8 == 0 {
                self.emit(buf.block_by_index((origin + i) % total), StreamId::Other, true);
            }
            if self.rng.next_f64() < chase {
                let target = (origin + zipf_rank(&mut self.rng, hot) as u64) % total;
                let write = self.rng.gen_bool(0.12);
                self.emit(buf.block_by_index(target), StreamId::Other, write);
            }
        }
    }

    /// Present: read the back buffer, write the displayable color stream.
    fn present(&mut self) {
        let blocks = self.front.total_blocks();
        for i in 0..blocks {
            if i % 4 == 0 {
                let b = self.back.block_by_index(i % self.back.total_blocks());
                self.emit(b, StreamId::Texture, false);
            }
            let f = self.front.block_by_index(i);
            self.emit(f, StreamId::Display, true);
        }
    }
}

/// A pull-based [`AccessSource`] that synthesizes one frame-graph frame
/// band by band — the graph analogue of [`FrameStream`].
///
/// [`FrameStream`]: crate::FrameStream
pub struct GraphStream<'a> {
    renderer: GraphRenderer<'a>,
    next_stage: u32,
    buf: Vec<Access>,
    emitted: u64,
}

impl<'a> GraphStream<'a> {
    /// Prepares frame `frame_idx` of `graph` for streaming synthesis.
    pub fn new(graph: &'a FrameGraph, frame_idx: u32, scale: Scale) -> Self {
        GraphStream {
            renderer: GraphRenderer::new(graph, frame_idx, scale),
            next_stage: 0,
            buf: Vec::new(),
            emitted: 0,
        }
    }

    /// Work counters accumulated so far (complete once exhausted).
    pub fn work(&self) -> FrameWork {
        self.renderer.work()
    }

    /// Per-stream stats accumulated so far (complete once exhausted).
    pub fn stats(&self) -> &StreamStats {
        self.renderer.trace().stats()
    }

    /// Accesses handed out through [`AccessSource::chunk`] so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl AccessSource for GraphStream<'_> {
    fn advance(&mut self) -> io::Result<bool> {
        loop {
            if self.next_stage >= GraphRenderer::STAGES {
                self.buf.clear();
                return Ok(false);
            }
            self.renderer.run_stage(self.next_stage);
            self.next_stage += 1;
            self.buf = self.renderer.take_emitted();
            if !self.buf.is_empty() {
                self.emitted += self.buf.len() as u64;
                return Ok(true);
            }
        }
    }

    fn chunk(&self) -> Chunk<'_> {
        Chunk { accesses: &self.buf, next_uses: None }
    }
}

impl std::fmt::Debug for GraphStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphStream")
            .field("next_stage", &self.next_stage)
            .field("buffered", &self.buf.len())
            .field("emitted", &self.emitted)
            .finish()
    }
}

/// Collects a streamed graph frame back into a [`Trace`] (test / tooling
/// helper, mirroring [`collect_stream`]).
///
/// [`collect_stream`]: crate::collect_stream
pub fn collect_graph_stream(mut stream: GraphStream<'_>) -> (Trace, FrameWork) {
    let mut trace = Trace::new(stream.renderer.graph.name(), stream.renderer.frame_idx);
    while stream.advance().expect("graph synthesis cannot fail") {
        for a in stream.chunk().accesses {
            trace.push(*a);
        }
    }
    let work = stream.work();
    (trace, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn deferred(coherence: f64) -> FrameGraph {
        FrameGraph::new("t-deferred", 640, 360)
            .texture_mb(128)
            .coherence(coherence)
            .pass(PassKind::ZPrepass)
            .pass(PassKind::GBuffer { targets: 3 })
            .pass(PassKind::DeferredLighting)
            .pass(PassKind::PostFx { passes: 2 })
            .pass(PassKind::Present)
    }

    #[test]
    fn validation_rejects_malformed_graphs() {
        let cases: [(FrameGraph, &str); 6] = [
            (FrameGraph::new("x", 640, 360), "at least one pass"),
            (FrameGraph::new("bad name", 640, 360).pass(PassKind::Present), "graph name"),
            (FrameGraph::new("x", 32, 360).pass(PassKind::Present), "at least 64x64"),
            (FrameGraph::new("x", 640, 360).coherence(1.5).pass(PassKind::Present), "coherence"),
            (FrameGraph::new("x", 640, 360).pass(PassKind::DeferredLighting), "earlier GBuffer"),
            (
                FrameGraph::new("x", 640, 360).pass(PassKind::Present).pass(PassKind::ZPrepass),
                "last pass",
            ),
        ];
        for (graph, fragment) in cases {
            let err = graph.validate().expect_err(fragment);
            assert!(err.contains(fragment), "error {err:?} missing {fragment:?}");
        }
        deferred(0.5).validate().unwrap();
    }

    #[test]
    fn render_is_deterministic() {
        let g = deferred(0.7);
        let t1 = GraphRenderer::new(&g, 2, Scale::Tiny).render();
        let t2 = GraphRenderer::new(&g, 2, Scale::Tiny).render();
        assert_eq!(t1, t2);
    }

    #[test]
    fn frames_differ() {
        let g = deferred(1.0);
        let t0 = GraphRenderer::new(&g, 0, Scale::Tiny).render();
        let t1 = GraphRenderer::new(&g, 1, Scale::Tiny).render();
        assert_ne!(t0.accesses(), t1.accesses());
    }

    #[test]
    fn deferred_emits_all_major_streams() {
        let g = deferred(0.85);
        let t = GraphRenderer::new(&g, 0, Scale::Tiny).render();
        let s = t.stats();
        for stream in [
            StreamId::Vertex,
            StreamId::HiZ,
            StreamId::Z,
            StreamId::RenderTarget,
            StreamId::Texture,
            StreamId::Display,
        ] {
            assert!(s.accesses(stream) > 0, "missing stream {stream}");
        }
    }

    #[test]
    fn compute_graph_is_stream_free() {
        let g = FrameGraph::new("t-cpu", 64, 64)
            .texture_mb(1)
            .pass(PassKind::Compute { footprint_log2: 22, chase: 0.3 });
        let t = GraphRenderer::new(&g, 0, Scale::Tiny).render();
        assert!(!t.is_empty());
        for a in t.accesses() {
            assert_eq!(a.stream, StreamId::Other, "compute graphs emit only Other");
        }
    }

    #[test]
    fn stream_matches_materialized_graph() {
        let g = deferred(0.6);
        let (trace, work) = GraphRenderer::new(&g, 1, Scale::Tiny).render_with_work();
        let (streamed, swork) = collect_graph_stream(GraphStream::new(&g, 1, Scale::Tiny));
        assert_eq!(work, swork);
        assert_eq!(trace.accesses(), streamed.accesses());
        assert_eq!(trace.stats(), streamed.stats());
    }

    /// Fraction of frame-1 texture blocks already touched by frame 0.
    /// Texture is the stream the knob perturbs; render targets and depth
    /// legitimately keep the same addresses every frame, so the probe
    /// graph is forward-only — its texture traffic is all static-atlas
    /// sampling.
    fn overlap(coherence: f64) -> f64 {
        let g = FrameGraph::new("t-fwd", 640, 360)
            .texture_mb(128)
            .coherence(coherence)
            .pass(PassKind::Forward { overdraw: 1.2 })
            .seeded(7);
        let tex_blocks = |frame: u32| -> HashSet<u64> {
            GraphRenderer::new(&g, frame, Scale::Tiny)
                .render()
                .accesses()
                .iter()
                .filter(|a| a.stream == StreamId::Texture)
                .map(|a| a.block())
                .collect()
        };
        let f0 = tex_blocks(0);
        let f1 = tex_blocks(1);
        f1.intersection(&f0).count() as f64 / f1.len().max(1) as f64
    }

    #[test]
    fn coherence_knob_controls_interframe_overlap() {
        let high = overlap(1.0);
        let mid = overlap(0.5);
        let low = overlap(0.0);
        assert!(high > mid && mid > low, "overlap must decay: {high:.3} / {mid:.3} / {low:.3}");
        assert!(high - low > 0.1, "knob range too weak: {high:.3} vs {low:.3}");
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = deferred(0.5);
        assert_eq!(base.fingerprint(), deferred(0.5).fingerprint());
        assert_ne!(base.fingerprint(), deferred(0.6).fingerprint());
        assert_ne!(base.fingerprint(), deferred(0.5).seeded(9).fingerprint());
        assert_ne!(base.fingerprint(), deferred(0.5).texture_mb(32).fingerprint());
        assert_ne!(base.fingerprint(), deferred(0.5).pass(PassKind::ZPrepass).fingerprint());
        assert!(base.cache_key().starts_with("g-t-deferred-"));
    }
}
