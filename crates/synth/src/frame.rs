//! One frame of DirectX-style rendering, emitted as raw pipeline accesses
//! and filtered through the render caches into an LLC trace.
//!
//! The pass structure mirrors Section 2.1 of the paper:
//!
//! 1. *Offscreen passes* render shadow maps / reflections / intermediate
//!    targets into dedicated render-target surfaces (render-to-texture),
//! 2. an optional *depth pre-pass* lays down the Z buffer,
//! 3. the *main pass* rasterizes the scene into the back buffer: HiZ and Z
//!    tests, pixel shading that samples static textures *and* the
//!    offscreen render targets (dynamic texturing — the paper's primary
//!    inter-stream reuse), blending reads, render-target writes,
//! 4. *post-processing passes* re-sample the back buffer and write it
//!    again,
//! 5. *present* reads the final back buffer and writes the displayable
//!    color stream to the front buffer.

use grcache::RenderCaches;
use grtrace::{Access, StreamId, Trace};

use crate::rng::{frame_rng, zipf_rank, FrameRng};
use crate::{AppProfile, Scale, Surface, SurfaceAllocator, SurfaceKind};

/// Pixels per screen tile edge (8×8-pixel tiles, i.e. 2×2 surface blocks).
const TILE_PX: u32 = 8;
/// Static-texture "material region" size in blocks (4 KB regions).
const TEX_REGION_BLOCKS: u64 = 64;
/// Maximum length of the static-texture revisit history.
const TEX_HISTORY: usize = 16384;

/// Computational work performed while rendering a frame, used by the GPU
/// timing model to convert cache behaviour into frame time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameWork {
    /// Pixels shaded by the pixel shader (including overdraw).
    pub shaded_pixels: u64,
    /// Texels fetched by the samplers (before any cache filtering).
    pub texel_samples: u64,
    /// Vertices transformed by the vertex shader.
    pub vertices: u64,
    /// Raw pipeline accesses issued to the render caches.
    pub raw_accesses: u64,
}

/// Renders one synthetic frame for an application profile.
///
/// # Example
///
/// ```
/// use grsynth::{AppProfile, FrameRenderer, Scale};
///
/// let app = AppProfile::by_abbrev("BioShock").unwrap();
/// let trace = FrameRenderer::new(&app, 0, Scale::Tiny).render();
/// assert_eq!(trace.app(), "BioShock");
/// ```
#[derive(Debug)]
pub struct FrameRenderer<'a> {
    profile: &'a AppProfile,
    scale: Scale,
    rng: FrameRng,
    caches: RenderCaches,
    trace: Trace,
    width: u32,
    height: u32,
    back: Surface,
    front: Surface,
    depth: Surface,
    off_depth: Surface,
    hiz: Surface,
    stencil: Surface,
    static_tex: Surface,
    offscreen: Vec<Surface>,
    vertices: Surface,
    indices: Surface,
    /// Auxiliary render target (second MRT binding) used by DX11 profiles.
    mrt: Surface,
    scratch: Surface,
    /// Rolling cursor through the scratch surface's blocks.
    scratch_cursor: u64,
    constants: Surface,
    tex_history: Vec<u64>,
    tex_walk: u64,
    work: FrameWork,
    /// `[min, max)` revisit distance (in history entries) for the
    /// far-flung texture reuse; scales with the workload so the reuse sits
    /// just beyond a thrashing policy's retention at every scale.
    revisit_window: (usize, usize),
}

impl<'a> FrameRenderer<'a> {
    /// Prepares the surfaces and caches for frame `frame_idx` of `profile`.
    pub fn new(profile: &'a AppProfile, frame_idx: u32, scale: Scale) -> Self {
        let width = profile.scaled_width(scale);
        let height = profile.scaled_height(scale);
        let mut alloc = SurfaceAllocator::new();
        let back = alloc.alloc(SurfaceKind::BackBuffer, width, height);
        let front = alloc.alloc(SurfaceKind::FrontBuffer, width, height);
        // Depth is stored 2:1 compressed (GPUs compress Z aggressively to
        // save bandwidth), so the Z surface has half the back buffer's
        // footprint and each tile covers two Z blocks.
        let depth = alloc.alloc(SurfaceKind::Depth, width, (height / 2).max(4));
        // A multi-level HiZ pyramid: modeled at half vertical resolution,
        // so each 8x8-pixel tile covers two HiZ blocks.
        let hiz = alloc.alloc(SurfaceKind::HiZ, width.max(4), (height / 2).max(4));
        let stencil = alloc.alloc(SurfaceKind::Stencil, width, height);
        let tex_bytes = profile.scaled_texture_bytes(scale).max(64 * 1024);
        let tex_side_blocks = ((tex_bytes / 64) as f64).sqrt().ceil() as u32;
        let static_tex = alloc.alloc(
            SurfaceKind::StaticTexture,
            tex_side_blocks * Surface::PIXELS_PER_BLOCK_EDGE,
            tex_side_blocks * Surface::PIXELS_PER_BLOCK_EDGE,
        );
        let ow = ((width as f64 * profile.offscreen_scale) as u32).max(32);
        let oh = ((height as f64 * profile.offscreen_scale) as u32).max(32);
        let offscreen = (0..profile.offscreen_passes)
            .map(|_| alloc.alloc(SurfaceKind::RenderTarget, ow, oh))
            .collect();
        let off_depth = alloc.alloc(SurfaceKind::Depth, ow, (oh / 2).max(4));
        // Vertex traffic scales with the pixel count (divisor squared) so
        // the stream mix is scale-invariant.
        let d2 = u64::from(scale.divisor()) * u64::from(scale.divisor());
        let vertices = alloc.alloc_linear(
            SurfaceKind::VertexBuffer,
            (u64::from(profile.triangles_k) * 1024 * 4 / d2).max(4096),
        );
        let indices = alloc.alloc_linear(SurfaceKind::IndexBuffer, vertices.size_bytes() / 8);
        let mrt = alloc.alloc(SurfaceKind::RenderTarget, width, height);
        // Scratch render targets continuously produced and shortly after
        // consumed during the main pass (per-object reflections, particle
        // buffers, UI composition): real frames switch render targets
        // constantly, so render-to-texture consumption never pauses.
        let scratch = alloc.alloc(SurfaceKind::RenderTarget, width / 2, height / 4);
        let constants = alloc.alloc_linear(SurfaceKind::Constants, 64 * 1024);
        FrameRenderer {
            profile,
            scale,
            rng: frame_rng(profile.seed, frame_idx),
            caches: RenderCaches::new(),
            trace: Trace::with_capacity(profile.abbrev, frame_idx, 1 << 20),
            width,
            height,
            back,
            front,
            depth,
            off_depth,
            hiz,
            stencil,
            static_tex,
            offscreen,
            vertices,
            indices,
            mrt,
            scratch,
            scratch_cursor: 0,
            constants,
            tex_history: Vec::new(),
            // Consecutive frames see mostly the same materials, shifted by
            // camera motion: the walk starts where the previous frame's
            // drift would have carried it.
            tex_walk: u64::from(frame_idx) * 131,
            work: FrameWork::default(),
            revisit_window: {
                let d2 = (scale.divisor() * scale.divisor()) as usize;
                ((3072 / d2).max(24), (8192 / d2).max(72))
            },
        }
    }

    /// Runs the full pipeline and returns the LLC access trace; see
    /// [`FrameRenderer::render_with_work`] to also obtain the computational
    /// work for the GPU timing model.
    ///
    /// The frame is rendered in horizontal screen bands, with every pass
    /// interleaved band by band: GPUs pipeline consecutive passes, and real
    /// frames switch render targets hundreds of times, so production and
    /// consumption of dynamic textures overlap in time rather than forming
    /// long disjoint phases. Within one band the pass order of Section 2.1
    /// is preserved: render-to-texture targets (each band consumed by the
    /// trailing lighting work), depth pre-pass, main pass (which samples
    /// the targets — the inter-stream reuse of Figure 6), transparency
    /// effects, post-processing, and finally present.
    pub fn render(self) -> Trace {
        self.render_with_work().0
    }

    /// Renders the frame, returning both the LLC trace and the shader /
    /// sampler / geometry work performed.
    pub fn render_with_work(mut self) -> (Trace, FrameWork) {
        for s in 0..Self::STAGES {
            self.run_stage(s);
        }
        (self.trace, self.work)
    }

    /// Number of [`FrameRenderer::run_stage`] steps in a frame: the eight
    /// render bands plus the tail (final lighting, present, cache flush).
    pub(crate) const STAGES: u32 = Self::BANDS + 1;
    const BANDS: u32 = 8;

    /// Runs pipeline stage `s` (`0..STAGES`), appending its accesses to the
    /// internal trace. Stages must run in order, each exactly once;
    /// [`FrameRenderer::render_with_work`] does exactly that, and the
    /// streaming `FrameStream` interleaves [`FrameRenderer::take_emitted`]
    /// between stages — both orders produce identical access sequences.
    pub(crate) fn run_stage(&mut self, s: u32) {
        debug_assert!(s < Self::STAGES, "stage out of range");
        const BANDS: u32 = FrameRenderer::BANDS;
        let offscreen: Vec<Surface> = self.offscreen.clone();
        if s < BANDS {
            for (i, target) in offscreen.iter().enumerate() {
                self.offscreen_chunk(*target, s, BANDS);
                // Lighting trails production by one band.
                if s >= 1 {
                    self.lighting_chunk(offscreen[i], s - 1, BANDS);
                }
            }
            if self.profile.depth_prepass {
                self.depth_prepass(s, BANDS);
            }
            self.main_pass(s, BANDS);
            self.effects_pass(s, BANDS);
            for p in 0..self.profile.post_passes {
                self.post_pass(p, s, BANDS);
            }
        } else {
            // Consume the last lighting band of every target.
            for target in &offscreen {
                self.lighting_chunk(*target, BANDS - 1, BANDS);
            }
            self.present();
            self.caches.flush(&mut self.trace);
        }
    }

    /// Drains the accesses emitted so far (streaming hand-off between
    /// stages); the trace keeps its identity and cumulative stats.
    pub(crate) fn take_emitted(&mut self) -> Vec<Access> {
        self.trace.take_accesses()
    }

    /// The work counters accumulated so far (complete once every stage ran).
    pub(crate) fn work(&self) -> FrameWork {
        self.work
    }

    /// The trace being accumulated (for stream-side stats access).
    pub(crate) fn trace(&self) -> &Trace {
        &self.trace
    }

    #[inline]
    fn emit(&mut self, addr: u64, stream: StreamId, write: bool) {
        let access = if write { Access::store(addr, stream) } else { Access::load(addr, stream) };
        self.work.raw_accesses += 1;
        self.caches.filter(access, &mut self.trace);
    }

    /// Input-assembler traffic for a pass covering `fraction` of the scene.
    fn geometry(&mut self, fraction: f64) {
        let idx_blocks = ((self.indices.total_blocks() as f64) * fraction) as u64;
        let vtx_blocks = ((self.vertices.total_blocks() as f64) * fraction) as u64;
        let idx_base_blocks = self.indices.total_blocks();
        let vtx_base_blocks = self.vertices.total_blocks();
        for i in 0..idx_blocks {
            let addr = self.indices.block_by_index(i % idx_base_blocks);
            self.emit(addr, StreamId::VertexIndex, false);
        }
        // Four 16-byte vertices per 64-byte block.
        self.work.vertices += vtx_blocks * 4;
        for i in 0..vtx_blocks {
            let addr = self.vertices.block_by_index(i % vtx_base_blocks);
            self.emit(addr, StreamId::Vertex, false);
            // Indexed geometry re-reads shared vertices of nearby triangles.
            if i > 4 && self.rng.gen_bool(0.3) {
                let back = 1 + (self.rng.next_u64() % 4);
                let addr = self.vertices.block_by_index((i - back) % vtx_base_blocks);
                self.emit(addr, StreamId::Vertex, false);
            }
        }
        // Shader code and constants for the pass; the window rotates as
        // different shaders bind.
        let total = self.constants.total_blocks();
        let base = self.rng.next_u64() % total;
        for i in 0..48 {
            let addr = self.constants.block_by_index((base + i) % total);
            self.emit(addr, StreamId::Other, false);
        }
    }

    /// The four surface blocks covered by tile `(tx, ty)` on `surface`.
    fn tile_blocks(surface: &Surface, tx: u32, ty: u32) -> [u64; 4] {
        let px = tx * TILE_PX;
        let py = ty * TILE_PX;
        [
            surface.block_at_pixel(px, py),
            surface.block_at_pixel(px + 4, py),
            surface.block_at_pixel(px, py + 4),
            surface.block_at_pixel(px + 4, py + 4),
        ]
    }

    fn tiles_of(surface: &Surface) -> (u32, u32) {
        (surface.width().div_ceil(TILE_PX), surface.height().div_ceil(TILE_PX))
    }

    /// Samples static texture blocks for one tile into `out`.
    ///
    /// Revisits target the *medium* distance deliberately: regions touched
    /// in roughly the last 100–640 tiles are past the reach of the texture
    /// L3 (which absorbs short-range reuse) but plausibly still LLC
    /// resident — this is the far-flung `E0`/`E1` intra-stream reuse the
    /// paper characterizes in Figure 7, whose survival depends on the LLC
    /// policy.
    fn sample_static_texture(&mut self, footprint: usize, out: &mut Vec<u64>) {
        let regions = (self.static_tex.total_blocks() / TEX_REGION_BLOCKS).max(1);
        let roll = self.rng.next_f64();
        let (rv_min, rv_max) = self.revisit_window;
        let medium_revisit =
            roll < self.profile.tex_revisit && self.tex_history.len() > rv_min + rv_min / 8;
        let region_base = if medium_revisit {
            let window = (self.tex_history.len() - rv_min).min(rv_max - rv_min);
            let d = rv_min + ((self.rng.next_u64() as usize) % window);
            // Each region is far-revisited at most once (E1 texture blocks
            // rarely see further reuse — the paper's E1 death ratio is
            // 0.73 even under Belady's optimal), so take it out of the
            // history once consumed.
            let idx = self.tex_history.len() - 1 - d;
            self.tex_history.swap_remove(idx)
        } else if roll < self.profile.tex_revisit + 0.04 && !self.tex_history.is_empty() {
            // Occasional long-range revisit (usually cold by now).
            let k = zipf_rank(&mut self.rng, self.tex_history.len());
            self.tex_history[self.tex_history.len() - 1 - k]
        } else {
            // Fresh material: a drifting walk across the texture atlas
            // (the camera sweeping the scene's materials), plus a tiny set
            // of persistently hot regions (UI atlases, detail maps) whose
            // blocks stay live across the whole frame (the `E≥2` texture
            // population of Figure 7).
            self.tex_walk = self.tex_walk.wrapping_add(1);
            let region = if self.rng.gen_bool(0.02) {
                (self.rng.next_u64() % 8) * 997 % regions
            } else {
                (self.tex_walk + zipf_rank(&mut self.rng, 24) as u64) % regions
            };
            region * TEX_REGION_BLOCKS
        };
        if !medium_revisit {
            if self.tex_history.len() == TEX_HISTORY {
                self.tex_history.remove(0);
            }
            self.tex_history.push(region_base);
        }
        // Half the footprint walks a deterministic prefix of the region
        // (the blocks every visitor of this material touches — the top mip
        // levels), the other half scatters (anisotropy, lower mips).
        let total = self.static_tex.total_blocks();
        for i in 0..footprint as u64 {
            let b = if i % 3 < 2 {
                region_base + (i - i / 3) % TEX_REGION_BLOCKS
            } else {
                region_base + self.rng.next_u64() % TEX_REGION_BLOCKS
            };
            out.push(self.static_tex.block_by_index(b % total));
        }
    }

    /// The tile-row band `[start, end)` for chunk `s` of `chunks`.
    fn band(th: u32, s: u32, chunks: u32) -> (u32, u32) {
        (th * s / chunks, th * (s + 1) / chunks)
    }

    /// One band of an offscreen render-to-texture pass (shadow map,
    /// reflection, ...).
    fn offscreen_chunk(&mut self, target: Surface, s: u32, chunks: u32) {
        self.geometry(0.15 / f64::from(chunks));
        let (tw, th) = Self::tiles_of(&target);
        let (y0, y1) = Self::band(th, s, chunks);
        let mut tex = Vec::with_capacity(8);
        for ty in y0..y1 {
            for tx in 0..tw {
                // Depth test on the offscreen depth buffer.
                for b in Self::depth_blocks(&self.off_depth, tx, ty) {
                    self.emit(b, StreamId::Z, false);
                    self.emit(b, StreamId::Z, true);
                }
                // Shading with static textures (reflections and shadow
                // casters sample materials too); this traffic also puts
                // realistic pressure on the LLC between render-target
                // production and its far-flung consumption.
                tex.clear();
                let footprint =
                    (self.profile.tex_samples_per_pixel * 5.0).round().max(3.0) as usize;
                self.sample_static_texture(footprint, &mut tex);
                for &b in tex.iter() {
                    self.emit(b, StreamId::Texture, false);
                }
                // Color output.
                for b in Self::tile_blocks(&target, tx, ty) {
                    if self.rng.gen_bool(self.profile.blend_rate) {
                        self.emit(b, StreamId::RenderTarget, false);
                    }
                    self.emit(b, StreamId::RenderTarget, true);
                }
            }
        }
    }

    /// One band of the lighting/composition work that *consumes* a
    /// previously rendered offscreen target as a dynamic texture, blending
    /// the result into the back buffer (render-to-texture consumption).
    fn lighting_chunk(&mut self, source: Surface, s: u32, chunks: u32) {
        self.geometry(0.02 / f64::from(chunks));
        let (tw, th) = Self::tiles_of(&source);
        let (y0, y1) = Self::band(th, s, chunks);
        let (btw, bth) = Self::tiles_of(&self.back);
        let mut tex = Vec::with_capacity(4);
        for ty in y0..y1 {
            for tx in 0..tw {
                // The lighting work only touches a third of the target
                // here; the main pass samples the rest much later, so most
                // render-to-texture consumption is far-flung while enough
                // near consumption keeps the sample counters trained.
                if tx % 3 != 0 {
                    continue;
                }
                // Sample the dynamic texture where this light touches it.
                for b in Self::tile_blocks(&source, tx, ty) {
                    if self.consumable(b) {
                        self.emit(b, StreamId::Texture, false);
                    }
                }
                tex.clear();
                self.sample_static_texture(2, &mut tex);
                for &b in tex.iter() {
                    self.emit(b, StreamId::Texture, false);
                }
                // Accumulate into the corresponding back-buffer tile.
                let bx = (tx * btw / tw.max(1)).min(btw - 1);
                let by = (ty * bth / th.max(1)).min(bth - 1);
                for b in Self::tile_blocks(&self.back, bx, by) {
                    self.emit(b, StreamId::RenderTarget, false);
                    self.emit(b, StreamId::RenderTarget, true);
                }
            }
        }
    }

    /// The two blocks a tile covers on a half-height (2:1 compressed)
    /// surface such as HiZ or the depth buffer.
    fn half_height_tile_blocks(surface: &Surface, tx: u32, ty: u32) -> [u64; 2] {
        let x0 = (tx * TILE_PX).min(surface.width() - 1);
        let x1 = (tx * TILE_PX + 4).min(surface.width() - 1);
        let y = (ty * TILE_PX / 2).min(surface.height() - 1);
        [surface.block_at_pixel(x0, y), surface.block_at_pixel(x1, y)]
    }

    /// The two HiZ blocks covering tile `(tx, ty)`.
    fn hiz_blocks(&self, tx: u32, ty: u32) -> [u64; 2] {
        Self::half_height_tile_blocks(&self.hiz, tx, ty)
    }

    /// The two compressed Z blocks covering tile `(tx, ty)` of `depth`.
    fn depth_blocks(depth: &Surface, tx: u32, ty: u32) -> [u64; 2] {
        Self::half_height_tile_blocks(depth, tx, ty)
    }

    /// Depth pre-pass: geometry only, laying down HiZ and Z.
    fn depth_prepass(&mut self, s: u32, bands: u32) {
        self.geometry(0.8 / f64::from(bands));
        let (tw, th) = Self::tiles_of(&self.back);
        let (y0, y1) = Self::band(th, s, bands);
        for ty in y0..y1 {
            for tx in 0..tw {
                for hb in self.hiz_blocks(tx, ty) {
                    self.emit(hb, StreamId::HiZ, false);
                    self.emit(hb, StreamId::HiZ, true);
                }
                // First touch of the depth buffer this frame: pure write.
                for b in Self::depth_blocks(&self.depth, tx, ty) {
                    self.emit(b, StreamId::Z, true);
                }
            }
        }
    }

    /// Whether this offscreen block is consumed as a dynamic texture.
    fn consumable(&self, block_addr: u64) -> bool {
        // Deterministic per-block choice so exactly ~rate of each surface
        // is consumed, independent of traversal order.
        let mut h = block_addr ^ self.profile.seed;
        h = (h ^ (h >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h % 1024) as f64 / 1024.0 < self.profile.rt_to_tex_rate
    }

    /// The main pass: full scene into the back buffer.
    fn main_pass(&mut self, s: u32, bands: u32) {
        self.geometry(1.0 / f64::from(bands));
        let (tw, th) = Self::tiles_of(&self.back);
        let overdraw_extra = (self.profile.overdraw - 1.0).clamp(0.0, 1.0);
        let footprint = (self.profile.tex_samples_per_pixel * 7.0).round().max(4.0) as usize;
        let offscreen = self.offscreen.clone();
        let mut tex = Vec::with_capacity(footprint + 8);
        let (y0, y1) = Self::band(th, s, bands);
        for ty in y0..y1 {
            for tx in 0..tw {
                // Hierarchical depth test.
                for hb in self.hiz_blocks(tx, ty) {
                    self.emit(hb, StreamId::HiZ, false);
                    if !self.profile.depth_prepass {
                        self.emit(hb, StreamId::HiZ, true);
                    }
                }

                // Early depth test; extra fragment rounds model overdraw.
                // After a depth pre-pass the HiZ test culls half the tiles
                // outright, so the fine-grained Z buffer is not even read.
                let rounds = 1 + u32::from(self.rng.gen_bool(overdraw_extra));
                for round in 0..rounds {
                    let hiz_culled = self.profile.depth_prepass && self.rng.gen_bool(0.5);
                    if !hiz_culled {
                        for b in Self::depth_blocks(&self.depth, tx, ty) {
                            self.emit(b, StreamId::Z, false);
                            // Without a pre-pass the surviving fragments of
                            // the first round update the depth buffer.
                            if !self.profile.depth_prepass && round == 0 {
                                self.emit(b, StreamId::Z, true);
                            }
                        }
                    }
                    // Fragments rejected by the early tests do not shade.
                    if round > 0 && self.rng.gen_bool(0.5) {
                        continue;
                    }
                    self.shade_tile(tx, ty, footprint, &offscreen, &mut tex);
                }

                // Stencil test on a fraction of the tiles.
                if self.rng.gen_bool(self.profile.stencil_rate) {
                    for b in Self::tile_blocks(&self.stencil, tx, ty) {
                        self.emit(b, StreamId::Stencil, false);
                        self.emit(b, StreamId::Stencil, true);
                    }
                }
            }
            // Per-row render-target churn: produce a strip of scratch
            // render target, and consume the strip produced two rows ago
            // as a texture (at the application's consumption rate).
            self.scratch_churn(64);
        }
    }

    /// Produces `n` scratch render-target blocks and consumes the `n`
    /// blocks produced two calls earlier.
    fn scratch_churn(&mut self, n: u64) {
        let total = self.scratch.total_blocks();
        for i in 0..n {
            let b = self.scratch.block_by_index((self.scratch_cursor + i) % total);
            self.emit(b, StreamId::RenderTarget, true);
        }
        if self.scratch_cursor >= 2 * n {
            for i in 0..n {
                let b = self.scratch.block_by_index((self.scratch_cursor - 2 * n + i) % total);
                if self.consumable(b) {
                    self.emit(b, StreamId::Texture, false);
                }
            }
        }
        self.scratch_cursor += n;
    }

    /// Pixel shading + output merger for one tile of the main pass.
    fn shade_tile(
        &mut self,
        tx: u32,
        ty: u32,
        footprint: usize,
        offscreen: &[Surface],
        tex: &mut Vec<u64>,
    ) {
        self.work.shaded_pixels += u64::from(TILE_PX * TILE_PX);
        self.work.texel_samples +=
            (self.profile.tex_samples_per_pixel * f64::from(TILE_PX * TILE_PX) * 4.0) as u64;
        tex.clear();
        self.sample_static_texture(footprint, tex);
        // Dynamic texturing: the main pass re-samples the offscreen
        // targets — the far-flung render-to-texture reuse of Figure 6. It
        // samples the region produced two bands earlier, so the target
        // block must survive roughly two RRIP aging rounds between
        // production and this consumption: a fully protected insertion
        // (RRPV 0) usually makes it, an intermediate one (RRPV 2) usually
        // does not. This is precisely the reuse window where the paper's
        // policies separate.
        let (tw, th) = Self::tiles_of(&self.back);
        let lag_rows = th / 8; // one render band
        if ty >= lag_rows {
            let sy = ty - lag_rows;
            for target in offscreen.iter() {
                let scale_y = |row: u32| {
                    ((u64::from(row) * u64::from(target.height()) / u64::from(th * TILE_PX)) as u32)
                        / TILE_PX
                };
                let oty = scale_y(sy);
                // Only the first back-buffer row mapping onto each target
                // row samples it, so a target block is far-consumed once.
                if sy > 0 && scale_y(sy - 1) == oty {
                    continue;
                }
                let otx = ((u64::from(tx) * u64::from(target.width()) / u64::from(tw * TILE_PX))
                    as u32)
                    / TILE_PX;
                // The lighting work took every third column; the main
                // pass consumes the other two thirds, far from production.
                if otx.is_multiple_of(3) {
                    continue;
                }
                for b in Self::tile_blocks(target, otx, oty) {
                    if self.consumable(b) {
                        tex.push(b);
                    }
                }
            }
        }
        for &b in tex.iter() {
            self.emit(b, StreamId::Texture, false);
        }
        // Output merger: blend + write the back buffer.
        for b in Self::tile_blocks(&self.back, tx, ty) {
            if self.rng.gen_bool(self.profile.blend_rate) {
                self.emit(b, StreamId::RenderTarget, false);
            }
            self.emit(b, StreamId::RenderTarget, true);
        }
        // DirectX 11 profiles bind a second render target (DirectX 10
        // allows up to eight simultaneously bound targets).
        if self.profile.dx_version >= 11 {
            for b in Self::tile_blocks(&self.mrt, tx, ty) {
                self.emit(b, StreamId::RenderTarget, true);
            }
        }
    }

    /// Transparency/particle effects: soft particles re-read the depth
    /// buffer (its second, far-flung reuse) and blend into the back buffer.
    fn effects_pass(&mut self, s: u32, bands: u32) {
        self.geometry(0.05 / f64::from(bands));
        let (tw, th) = Self::tiles_of(&self.back);
        let mut tex = Vec::with_capacity(4);
        let (y0, y1) = Self::band(th, s, bands);
        for ty in y0..y1 {
            for tx in 0..tw {
                if !self.rng.gen_bool(0.45) {
                    continue;
                }
                for b in Self::depth_blocks(&self.depth, tx, ty) {
                    self.emit(b, StreamId::Z, false);
                }
                tex.clear();
                self.sample_static_texture(2, &mut tex);
                for &b in tex.iter() {
                    self.emit(b, StreamId::Texture, false);
                }
                for b in Self::tile_blocks(&self.back, tx, ty) {
                    self.emit(b, StreamId::RenderTarget, false);
                    self.emit(b, StreamId::RenderTarget, true);
                }
            }
            self.scratch_churn(32);
        }
    }

    /// Full-screen post-processing: re-sample the back buffer, write it.
    fn post_pass(&mut self, _index: u32, s: u32, bands: u32) {
        self.geometry(0.01 / f64::from(bands));
        let (tw, th) = Self::tiles_of(&self.back);
        let (y0, y1) = Self::band(th, s, bands);
        for ty in y0..y1 {
            for tx in 0..tw {
                for b in Self::tile_blocks(&self.back, tx, ty) {
                    self.emit(b, StreamId::Texture, false);
                }
                for b in Self::tile_blocks(&self.back, tx, ty) {
                    self.emit(b, StreamId::RenderTarget, true);
                }
            }
            self.scratch_churn(32);
        }
    }

    /// Present: the displayable color stream (written once, never reused).
    fn present(&mut self) {
        let blocks = self.front.total_blocks();
        for i in 0..blocks {
            if i % 4 == 0 {
                // The composition engine reads the back buffer...
                let b = self.back.block_by_index(i % self.back.total_blocks());
                self.emit(b, StreamId::Texture, false);
            }
            // ...and writes the final displayable colors.
            let f = self.front.block_by_index(i);
            self.emit(f, StreamId::Display, true);
        }
    }

    /// Scaled dimensions of the frame being rendered (for reporting).
    pub fn dimensions(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// The scale the frame is rendered at.
    pub fn scale(&self) -> Scale {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtrace::StreamId;

    fn app(abbrev: &str) -> AppProfile {
        AppProfile::by_abbrev(abbrev).unwrap()
    }

    #[test]
    fn render_produces_all_major_streams() {
        let a = app("BioShock");
        let t = FrameRenderer::new(&a, 0, Scale::Tiny).render();
        let s = t.stats();
        for stream in [
            StreamId::Vertex,
            StreamId::HiZ,
            StreamId::Z,
            StreamId::RenderTarget,
            StreamId::Texture,
            StreamId::Display,
        ] {
            assert!(s.accesses(stream) > 0, "missing stream {stream}");
        }
    }

    #[test]
    fn render_is_deterministic() {
        let a = app("AssnCreed");
        let t1 = FrameRenderer::new(&a, 2, Scale::Tiny).render();
        let t2 = FrameRenderer::new(&a, 2, Scale::Tiny).render();
        assert_eq!(t1, t2);
    }

    #[test]
    fn frames_differ() {
        let a = app("AssnCreed");
        let t1 = FrameRenderer::new(&a, 0, Scale::Tiny).render();
        let t2 = FrameRenderer::new(&a, 1, Scale::Tiny).render();
        assert_ne!(t1.accesses(), t2.accesses());
    }

    #[test]
    fn rt_and_tex_dominate_llc_traffic() {
        let a = app("3DMarkVAGT1");
        let t = FrameRenderer::new(&a, 0, Scale::Tiny).render();
        let s = t.stats();
        let rt_tex = s.fraction(StreamId::RenderTarget) + s.fraction(StreamId::Texture);
        assert!(rt_tex > 0.5, "RT+TEX should dominate, got {rt_tex:.2}");
    }

    #[test]
    fn display_is_write_only_and_bounded() {
        let a = app("HAWX");
        let t = FrameRenderer::new(&a, 0, Scale::Tiny).render();
        let s = t.stats();
        assert_eq!(s.reads(StreamId::Display), 0);
        assert!(s.fraction(StreamId::Display) < 0.15);
    }

    #[test]
    fn larger_scale_means_more_traffic() {
        let a = app("Dirt");
        let tiny = FrameRenderer::new(&a, 0, Scale::Tiny).render();
        let quarter = FrameRenderer::new(&a, 0, Scale::Quarter).render();
        assert!(quarter.len() > 2 * tiny.len());
    }
}
