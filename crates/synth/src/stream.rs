//! Band-by-band streaming frame synthesis.
//!
//! [`FrameStream`] drives a [`FrameRenderer`] one pipeline stage at a time
//! and hands each stage's accesses out through the [`AccessSource`] chunk
//! protocol, so a frame is never materialized as one giant `Vec`. Peak
//! memory is bounded by the largest single stage's emission (roughly one
//! render band) instead of the whole frame.
//!
//! The access sequence is bit-identical to [`generate_frame`]: the renderer
//! runs the same stages in the same order; the stream merely drains the
//! trace buffer between stages.
//!
//! [`generate_frame`]: crate::generate_frame

use std::io;

use grtrace::{Access, AccessSource, Chunk, StreamStats, Trace};

use crate::frame::{FrameRenderer, FrameWork};
use crate::{AppProfile, Scale};

/// A pull-based [`AccessSource`] that synthesizes one frame band by band.
///
/// # Example
///
/// ```
/// use grsynth::{AppProfile, FrameStream, Scale};
/// use grtrace::AccessSource;
///
/// let profile = AppProfile::by_abbrev("BioShock").expect("profile");
/// let mut stream = FrameStream::new(&profile, 0, Scale::Tiny);
/// let mut total = 0u64;
/// while stream.advance().unwrap() {
///     total += stream.chunk().accesses.len() as u64;
/// }
/// assert!(total > 0);
/// let work = stream.work(); // complete once the stream is exhausted
/// assert!(work.shaded_pixels > 0);
/// ```
pub struct FrameStream<'a> {
    renderer: FrameRenderer<'a>,
    next_stage: u32,
    buf: Vec<Access>,
    emitted: u64,
}

impl<'a> FrameStream<'a> {
    /// Prepares frame `frame_idx` of `profile` for streaming synthesis.
    pub fn new(profile: &'a AppProfile, frame_idx: u32, scale: Scale) -> Self {
        FrameStream {
            renderer: FrameRenderer::new(profile, frame_idx, scale),
            next_stage: 0,
            buf: Vec::new(),
            emitted: 0,
        }
    }

    /// The shader / sampler / geometry work counters accumulated so far.
    /// Complete (equal to [`generate_frame`]'s) once the stream is
    /// exhausted.
    ///
    /// [`generate_frame`]: crate::generate_frame
    pub fn work(&self) -> FrameWork {
        self.renderer.work()
    }

    /// Per-stream access statistics accumulated so far. Complete once the
    /// stream is exhausted.
    pub fn stats(&self) -> &StreamStats {
        self.renderer.trace().stats()
    }

    /// Accesses handed out through [`AccessSource::chunk`] so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl AccessSource for FrameStream<'_> {
    fn advance(&mut self) -> io::Result<bool> {
        loop {
            if self.next_stage >= FrameRenderer::STAGES {
                self.buf.clear();
                return Ok(false);
            }
            self.renderer.run_stage(self.next_stage);
            self.next_stage += 1;
            self.buf = self.renderer.take_emitted();
            if !self.buf.is_empty() {
                self.emitted += self.buf.len() as u64;
                return Ok(true);
            }
        }
    }

    fn chunk(&self) -> Chunk<'_> {
        Chunk { accesses: &self.buf, next_uses: None }
    }
}

impl std::fmt::Debug for FrameStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameStream")
            .field("next_stage", &self.next_stage)
            .field("buffered", &self.buf.len())
            .field("emitted", &self.emitted)
            .finish()
    }
}

/// Collects a streamed frame back into a [`Trace`] (test / tooling helper;
/// production paths should consume the stream chunk by chunk).
pub fn collect_stream(mut stream: FrameStream<'_>, app: &str, frame: u32) -> (Trace, FrameWork) {
    let mut trace = Trace::new(app, frame);
    while stream.advance().expect("frame synthesis cannot fail") {
        for a in stream.chunk().accesses {
            trace.push(*a);
        }
    }
    let work = stream.work();
    (trace, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_matches_materialized_frame() {
        let profile = AppProfile::by_abbrev("BioShock").expect("profile");
        let (trace, work) = FrameRenderer::new(&profile, 3, Scale::Tiny).render_with_work();
        let stream = FrameStream::new(&profile, 3, Scale::Tiny);
        let (streamed, swork) = collect_stream(stream, trace.app(), 3);
        assert_eq!(work, swork);
        assert_eq!(trace.accesses(), streamed.accesses());
        assert_eq!(trace.stats(), streamed.stats());
    }

    #[test]
    fn stream_is_chunked_not_monolithic() {
        let profile = AppProfile::by_abbrev("HAWX").expect("profile");
        let mut stream = FrameStream::new(&profile, 0, Scale::Tiny);
        let mut chunks = 0;
        let mut total = 0usize;
        while stream.advance().unwrap() {
            chunks += 1;
            let c = stream.chunk();
            assert!(!c.accesses.is_empty());
            assert!(c.next_uses.is_none());
            total += c.accesses.len();
        }
        assert!(chunks > 1, "a frame must span several stages, got {chunks}");
        assert_eq!(total as u64, stream.emitted());
        // Exhausted stream stays exhausted.
        assert!(!stream.advance().unwrap());
        assert!(stream.chunk().accesses.is_empty());
    }

    #[test]
    fn every_profile_streams_identically() {
        for profile in AppProfile::all() {
            let (trace, work) = FrameRenderer::new(&profile, 1, Scale::Tiny).render_with_work();
            let stream = FrameStream::new(&profile, 1, Scale::Tiny);
            let (streamed, swork) = collect_stream(stream, trace.app(), 1);
            assert_eq!(trace.accesses(), streamed.accesses(), "app {}", profile.name);
            assert_eq!(work, swork, "app {}", profile.name);
        }
    }
}
