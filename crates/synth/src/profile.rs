//! The twelve application profiles (Table 1 plus synthetic reuse knobs).

/// Resolution scaling applied to a profile before synthesis.
///
/// Full scale renders the application's native resolution (Table 1); the
/// smaller scales divide both dimensions, shrinking traces proportionally
/// for faster experimentation. Every reuse *ratio* is scale-invariant by
/// construction (surface sizes, texture working sets, and pass structure
/// shrink together).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Native resolution.
    Full,
    /// Half width and height (¼ of the pixels).
    Half,
    /// Quarter width and height (1/16 of the pixels).
    Quarter,
    /// One-eighth width and height; for unit tests.
    Tiny,
}

impl Scale {
    /// The divisor applied to each dimension.
    pub fn divisor(self) -> u32 {
        match self {
            Scale::Full => 1,
            Scale::Half => 2,
            Scale::Quarter => 4,
            Scale::Tiny => 8,
        }
    }

    /// Parses the conventional environment-variable spelling.
    pub fn from_name(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "full" => Some(Scale::Full),
            "half" => Some(Scale::Half),
            "quarter" => Some(Scale::Quarter),
            "tiny" => Some(Scale::Tiny),
            _ => None,
        }
    }
}

/// A synthetic stand-in for one of the paper's DirectX applications.
///
/// The identity fields (name, DirectX version, resolution, frame count)
/// follow Table 1. The remaining knobs control the *reuse structure* of
/// the synthesized frames and were calibrated against the paper's
/// characterization figures; see `DESIGN.md` for the mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Full application name.
    pub name: &'static str,
    /// Abbreviated name used in the figures.
    pub abbrev: &'static str,
    /// DirectX version (10 or 11).
    pub dx_version: u32,
    /// Native frame width in pixels.
    pub width: u32,
    /// Native frame height in pixels.
    pub height: u32,
    /// Number of captured frames (the 12 apps total 52).
    pub frames: u32,
    /// Render-to-texture passes preceding the main pass (shadow maps,
    /// reflections, G-buffer-ish inputs).
    pub offscreen_passes: u32,
    /// Linear size of offscreen render targets relative to the screen.
    pub offscreen_scale: f64,
    /// Probability that an offscreen render-target block is later sampled
    /// as a texture (drives the Figure 6 inter-stream reuse; Assassin's
    /// Creed reaches 0.9).
    pub rt_to_tex_rate: f64,
    /// Static texture working set touched per frame, in MB at full scale.
    pub static_texture_mb: f64,
    /// Texture samples issued per shaded pixel.
    pub tex_samples_per_pixel: f64,
    /// Probability that a tile re-samples an already-touched static
    /// texture region (drives E1/E2 texture reuse).
    pub tex_revisit: f64,
    /// Average fragments per pixel in the main pass (depth complexity).
    pub overdraw: f64,
    /// Whether a depth pre-pass writes Z before the main pass re-reads it.
    pub depth_prepass: bool,
    /// Fraction of render-target writes preceded by a blending read.
    pub blend_rate: f64,
    /// Fraction of tiles performing stencil tests.
    pub stencil_rate: f64,
    /// Thousands of triangles per frame (vertex/index traffic).
    pub triangles_k: u32,
    /// Full-screen post-processing passes that re-sample the back buffer.
    pub post_passes: u32,
    /// Base RNG seed; each frame perturbs it.
    pub seed: u64,
}

impl AppProfile {
    /// The twelve applications of Table 1, with frame counts summing to 52.
    pub fn all() -> Vec<AppProfile> {
        vec![
            AppProfile {
                name: "3D Mark Vantage GT1",
                abbrev: "3DMarkVAGT1",
                dx_version: 10,
                width: 1920,
                height: 1200,
                frames: 4,
                offscreen_passes: 3,
                offscreen_scale: 0.30,
                rt_to_tex_rate: 0.62,
                static_texture_mb: 48.0,
                tex_samples_per_pixel: 2.4,
                tex_revisit: 0.15,
                overdraw: 1.6,
                depth_prepass: true,
                blend_rate: 0.35,
                stencil_rate: 0.05,
                triangles_k: 900,
                post_passes: 2,
                seed: 0x3d3d_0001,
            },
            AppProfile {
                name: "3D Mark Vantage GT2",
                abbrev: "3DMarkVAGT2",
                dx_version: 10,
                width: 1920,
                height: 1200,
                frames: 4,
                offscreen_passes: 4,
                offscreen_scale: 0.30,
                rt_to_tex_rate: 0.58,
                static_texture_mb: 56.0,
                tex_samples_per_pixel: 2.6,
                tex_revisit: 0.18,
                overdraw: 1.8,
                depth_prepass: true,
                blend_rate: 0.40,
                stencil_rate: 0.05,
                triangles_k: 1100,
                post_passes: 2,
                seed: 0x3d3d_0002,
            },
            AppProfile {
                name: "Assassin's Creed",
                abbrev: "AssnCreed",
                dx_version: 10,
                width: 1680,
                height: 1050,
                frames: 5,
                // Heavy render-to-texture use: almost every offscreen RT is
                // consumed (the paper reports up to 90 % potential
                // consumption).
                offscreen_passes: 5,
                offscreen_scale: 0.35,
                rt_to_tex_rate: 0.90,
                static_texture_mb: 28.0,
                tex_samples_per_pixel: 2.0,
                tex_revisit: 0.24,
                overdraw: 1.5,
                depth_prepass: true,
                blend_rate: 0.30,
                stencil_rate: 0.10,
                triangles_k: 700,
                post_passes: 2,
                seed: 0xac5e_0001,
            },
            AppProfile {
                name: "BioShock",
                abbrev: "BioShock",
                dx_version: 10,
                width: 1920,
                height: 1200,
                frames: 4,
                offscreen_passes: 2,
                offscreen_scale: 0.30,
                rt_to_tex_rate: 0.55,
                static_texture_mb: 64.0,
                tex_samples_per_pixel: 2.2,
                tex_revisit: 0.12,
                overdraw: 1.7,
                depth_prepass: false,
                blend_rate: 0.45,
                stencil_rate: 0.15,
                triangles_k: 800,
                post_passes: 1,
                seed: 0xb105_0001,
            },
            AppProfile {
                name: "Devil May Cry 4",
                abbrev: "DMC",
                dx_version: 10,
                width: 1680,
                height: 1050,
                frames: 5,
                // Produces many offscreen targets but consumes few: the
                // dynamic RT management of full GSPC is what rescues DMC.
                offscreen_passes: 4,
                offscreen_scale: 0.45,
                rt_to_tex_rate: 0.18,
                static_texture_mb: 40.0,
                tex_samples_per_pixel: 2.8,
                tex_revisit: 0.21,
                overdraw: 2.2,
                depth_prepass: false,
                blend_rate: 0.55,
                stencil_rate: 0.08,
                triangles_k: 600,
                post_passes: 2,
                seed: 0xd3c4_0001,
            },
            AppProfile {
                name: "Civilization V",
                abbrev: "Civilization",
                dx_version: 11,
                width: 1920,
                height: 1200,
                frames: 4,
                offscreen_passes: 2,
                offscreen_scale: 0.25,
                rt_to_tex_rate: 0.65,
                static_texture_mb: 72.0,
                tex_samples_per_pixel: 2.0,
                tex_revisit: 0.25,
                overdraw: 1.3,
                depth_prepass: true,
                blend_rate: 0.25,
                stencil_rate: 0.02,
                triangles_k: 1200,
                post_passes: 1,
                seed: 0xc115_0001,
            },
            AppProfile {
                name: "Dirt 2",
                abbrev: "Dirt",
                dx_version: 11,
                width: 1680,
                height: 1050,
                frames: 4,
                // Few consumable RTs; like DMC, static RT pinning backfires.
                offscreen_passes: 3,
                offscreen_scale: 0.45,
                rt_to_tex_rate: 0.22,
                static_texture_mb: 52.0,
                tex_samples_per_pixel: 2.4,
                tex_revisit: 0.09,
                overdraw: 1.9,
                depth_prepass: true,
                blend_rate: 0.50,
                stencil_rate: 0.04,
                triangles_k: 1000,
                post_passes: 3,
                seed: 0xd124_0001,
            },
            AppProfile {
                name: "HAWX 2",
                abbrev: "HAWX",
                dx_version: 11,
                width: 1920,
                height: 1200,
                frames: 4,
                offscreen_passes: 2,
                offscreen_scale: 0.30,
                rt_to_tex_rate: 0.50,
                static_texture_mb: 36.0,
                tex_samples_per_pixel: 1.8,
                tex_revisit: 0.15,
                overdraw: 1.2,
                depth_prepass: false,
                blend_rate: 0.20,
                stencil_rate: 0.02,
                triangles_k: 1400,
                post_passes: 2,
                seed: 0x4a3c_0001,
            },
            AppProfile {
                name: "Unigine Heaven 2.1",
                abbrev: "Heaven",
                dx_version: 11,
                width: 2560,
                height: 1600,
                frames: 5,
                // Enormous resolution and texture footprint: the LLC is
                // overwhelmed and every policy struggles (smallest gains).
                offscreen_passes: 2,
                offscreen_scale: 0.30,
                rt_to_tex_rate: 0.45,
                static_texture_mb: 120.0,
                tex_samples_per_pixel: 2.6,
                tex_revisit: 0.08,
                overdraw: 2.0,
                depth_prepass: true,
                blend_rate: 0.35,
                stencil_rate: 0.06,
                triangles_k: 2200,
                post_passes: 2,
                seed: 0x43a7_0001,
            },
            AppProfile {
                name: "Lost Planet 2",
                abbrev: "LostPlanet",
                dx_version: 11,
                width: 1920,
                height: 1200,
                frames: 5,
                offscreen_passes: 4,
                offscreen_scale: 0.35,
                rt_to_tex_rate: 0.70,
                static_texture_mb: 44.0,
                tex_samples_per_pixel: 2.5,
                tex_revisit: 0.18,
                overdraw: 1.8,
                depth_prepass: false,
                blend_rate: 0.40,
                stencil_rate: 0.12,
                triangles_k: 900,
                post_passes: 2,
                seed: 0x105c_0001,
            },
            AppProfile {
                name: "Stalker COP",
                abbrev: "StalkerCOP",
                dx_version: 11,
                width: 1680,
                height: 1050,
                frames: 4,
                offscreen_passes: 3,
                offscreen_scale: 0.30,
                rt_to_tex_rate: 0.60,
                static_texture_mb: 60.0,
                tex_samples_per_pixel: 2.3,
                tex_revisit: 0.14,
                overdraw: 1.6,
                depth_prepass: true,
                blend_rate: 0.30,
                stencil_rate: 0.20,
                triangles_k: 800,
                post_passes: 3,
                seed: 0x57a1_0001,
            },
            AppProfile {
                name: "Unigine 3D engine",
                abbrev: "Unigine",
                dx_version: 11,
                width: 1920,
                height: 1200,
                frames: 4,
                offscreen_passes: 3,
                offscreen_scale: 0.30,
                rt_to_tex_rate: 0.55,
                static_texture_mb: 68.0,
                tex_samples_per_pixel: 2.4,
                tex_revisit: 0.11,
                overdraw: 1.7,
                depth_prepass: true,
                blend_rate: 0.35,
                stencil_rate: 0.05,
                triangles_k: 1300,
                post_passes: 2,
                seed: 0x0419_0001,
            },
        ]
    }

    /// Looks up a profile by its abbreviated name.
    pub fn by_abbrev(abbrev: &str) -> Option<AppProfile> {
        Self::all().into_iter().find(|a| a.abbrev == abbrev)
    }

    /// Scaled frame width.
    pub fn scaled_width(&self, scale: Scale) -> u32 {
        (self.width / scale.divisor()).max(64)
    }

    /// Scaled frame height.
    pub fn scaled_height(&self, scale: Scale) -> u32 {
        (self.height / scale.divisor()).max(64)
    }

    /// Static texture working set in bytes at the given scale (scales with
    /// the pixel count so reuse ratios are scale-invariant).
    pub fn scaled_texture_bytes(&self, scale: Scale) -> u64 {
        let d = scale.divisor() as f64;
        ((self.static_texture_mb * 1024.0 * 1024.0) / (d * d)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_apps_fifty_two_frames() {
        let apps = AppProfile::all();
        assert_eq!(apps.len(), 12);
        assert_eq!(apps.iter().map(|a| a.frames).sum::<u32>(), 52);
    }

    #[test]
    fn table1_identities() {
        let apps = AppProfile::all();
        let find = |ab: &str| apps.iter().find(|a| a.abbrev == ab).unwrap();
        assert_eq!(find("AssnCreed").dx_version, 10);
        assert_eq!((find("AssnCreed").width, find("AssnCreed").height), (1680, 1050));
        assert_eq!(find("Heaven").width, 2560);
        assert_eq!(find("Civilization").dx_version, 11);
        assert_eq!(apps.iter().filter(|a| a.dx_version == 10).count(), 5);
        assert_eq!(apps.iter().filter(|a| a.dx_version == 11).count(), 7);
    }

    #[test]
    fn abbrevs_unique() {
        let apps = AppProfile::all();
        let mut names: Vec<_> = apps.iter().map(|a| a.abbrev).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn seeds_unique() {
        let apps = AppProfile::all();
        let mut seeds: Vec<_> = apps.iter().map(|a| a.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12);
    }

    #[test]
    fn scaling_reduces_dimensions() {
        let app = AppProfile::by_abbrev("BioShock").unwrap();
        assert_eq!(app.scaled_width(Scale::Full), 1920);
        assert_eq!(app.scaled_width(Scale::Half), 960);
        assert_eq!(app.scaled_width(Scale::Tiny), 240);
        assert!(app.scaled_texture_bytes(Scale::Half) < app.scaled_texture_bytes(Scale::Full));
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_name("half"), Some(Scale::Half));
        assert_eq!(Scale::from_name("FULL"), Some(Scale::Full));
        assert_eq!(Scale::from_name("huge"), None);
    }

    #[test]
    fn probabilities_are_valid() {
        for a in AppProfile::all() {
            for p in [a.rt_to_tex_rate, a.tex_revisit, a.blend_rate, a.stencil_rate] {
                assert!((0.0..=1.0).contains(&p), "{}: {p}", a.abbrev);
            }
            assert!(a.overdraw >= 1.0);
            assert!(a.tex_samples_per_pixel > 0.0);
        }
    }
}
