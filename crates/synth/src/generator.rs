//! Top-level workload generation API.

use grtrace::Trace;

use crate::{AppProfile, FrameRenderer, Scale};

/// Identifies one of the 52 frames of the evaluation workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameJob {
    /// The application profile.
    pub app: AppProfile,
    /// Frame index within the application's capture.
    pub frame: u32,
}

impl FrameJob {
    /// Synthesizes this frame's LLC trace at the given scale.
    pub fn generate(&self, scale: Scale) -> Trace {
        generate_frame(&self.app, self.frame, scale)
    }

    /// A short `App#frame` label for reports.
    pub fn label(&self) -> String {
        format!("{}#{}", self.app.abbrev, self.frame)
    }
}

/// Synthesizes the LLC access trace for one frame.
///
/// # Example
///
/// ```
/// use grsynth::{generate_frame, AppProfile, Scale};
///
/// let app = AppProfile::by_abbrev("HAWX").unwrap();
/// let trace = generate_frame(&app, 0, Scale::Tiny);
/// assert_eq!(trace.frame(), 0);
/// ```
pub fn generate_frame(app: &AppProfile, frame: u32, scale: Scale) -> Trace {
    FrameRenderer::new(app, frame, scale).render()
}

/// The full 52-frame evaluation workload, in application order.
///
/// Traces are *not* generated here — each [`FrameJob`] synthesizes on
/// demand so the harness can process one frame at a time without holding
/// 52 traces in memory.
pub fn workload_frames() -> Vec<FrameJob> {
    AppProfile::all()
        .into_iter()
        .flat_map(|app| (0..app.frames).map(move |frame| FrameJob { app: app.clone(), frame }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_two_jobs() {
        assert_eq!(workload_frames().len(), 52);
    }

    #[test]
    fn labels_are_unique() {
        let jobs = workload_frames();
        let mut labels: Vec<String> = jobs.iter().map(|j| j.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 52);
    }

    #[test]
    fn job_generation_matches_direct_call() {
        let jobs = workload_frames();
        let j = &jobs[0];
        assert_eq!(j.generate(Scale::Tiny), generate_frame(&j.app, j.frame, Scale::Tiny));
    }
}
