//! Deterministic RNG plumbing for workload synthesis.
//!
//! Every frame derives its own seed from the application seed and frame
//! number, so traces are bit-for-bit reproducible across runs and across
//! machines — a requirement for the experiment harness to be comparable
//! between policies. The generator is a self-contained xoshiro256++ so the
//! workspace builds with no external dependencies.

/// A deterministic xoshiro256++ generator seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct FrameRng {
    s: [u64; 4],
}

impl FrameRng {
    /// Creates a generator whose full 256-bit state is expanded from
    /// `seed` with SplitMix64 (the reference seeding procedure).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        FrameRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform sample from `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Creates the RNG for frame `frame` of an application with base seed
/// `app_seed`.
pub fn frame_rng(app_seed: u64, frame: u32) -> FrameRng {
    // SplitMix64-style mix so consecutive frames get unrelated streams.
    let mut z = app_seed ^ (u64::from(frame).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    FrameRng::seed_from_u64(z)
}

/// Samples a Zipf-like rank in `0..n` with exponent ~1: low ranks are much
/// more likely. Used to model hot texture regions.
pub fn zipf_rank(rng: &mut FrameRng, n: usize) -> usize {
    debug_assert!(n > 0);
    // Inverse-CDF approximation for s=1: P(rank <= k) ~ ln(k+1)/ln(n+1).
    let u = rng.next_f64();
    let k = ((n as f64 + 1.0).powf(u) - 1.0).floor() as usize;
    k.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_rng_is_deterministic() {
        let mut a = frame_rng(42, 3);
        let mut b = frame_rng(42, 3);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_frames_get_different_streams() {
        let mut a = frame_rng(42, 0);
        let mut b = frame_rng(42, 1);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_f64_is_in_unit_interval() {
        let mut rng = frame_rng(1, 0);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = frame_rng(9, 0);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 produced {hits}/10000");
    }

    #[test]
    fn zipf_is_in_range_and_skewed() {
        let mut rng = frame_rng(7, 0);
        let n = 1000;
        let mut low = 0u32;
        for _ in 0..10_000 {
            let r = zipf_rank(&mut rng, n);
            assert!(r < n);
            if r < 32 {
                low += 1;
            }
        }
        // With exponent ~1, ranks < 32 of 1000 carry ~ln(33)/ln(1001) ≈ 50%.
        assert!(low > 3000, "zipf not skewed enough: {low}");
    }

    #[test]
    fn zipf_handles_single_element() {
        let mut rng = frame_rng(7, 0);
        for _ in 0..100 {
            assert_eq!(zipf_rank(&mut rng, 1), 0);
        }
    }
}
