//! Deterministic RNG plumbing for workload synthesis.
//!
//! Every frame derives its own seed from the application seed and frame
//! number, so traces are bit-for-bit reproducible across runs and across
//! machines — a requirement for the experiment harness to be comparable
//! between policies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the RNG for frame `frame` of an application with base seed
/// `app_seed`.
pub fn frame_rng(app_seed: u64, frame: u32) -> StdRng {
    // SplitMix64-style mix so consecutive frames get unrelated streams.
    let mut z = app_seed ^ (u64::from(frame).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Samples a Zipf-like rank in `0..n` with exponent ~1: low ranks are much
/// more likely. Used to model hot texture regions.
pub fn zipf_rank<R: Rng>(rng: &mut R, n: usize) -> usize {
    debug_assert!(n > 0);
    // Inverse-CDF approximation for s=1: P(rank <= k) ~ ln(k+1)/ln(n+1).
    let u: f64 = rng.gen();
    let k = ((n as f64 + 1.0).powf(u) - 1.0).floor() as usize;
    k.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_rng_is_deterministic() {
        let mut a = frame_rng(42, 3);
        let mut b = frame_rng(42, 3);
        let xs: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_frames_get_different_streams() {
        let mut a = frame_rng(42, 0);
        let mut b = frame_rng(42, 1);
        let xs: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn zipf_is_in_range_and_skewed() {
        let mut rng = frame_rng(7, 0);
        let n = 1000;
        let mut low = 0u32;
        for _ in 0..10_000 {
            let r = zipf_rank(&mut rng, n);
            assert!(r < n);
            if r < 32 {
                low += 1;
            }
        }
        // With exponent ~1, ranks < 32 of 1000 carry ~ln(33)/ln(1001) ≈ 50%.
        assert!(low > 3000, "zipf not skewed enough: {low}");
    }

    #[test]
    fn zipf_handles_single_element() {
        let mut rng = frame_rng(7, 0);
        for _ in 0..100 {
            assert_eq!(zipf_rank(&mut rng, 1), 0);
        }
    }
}
