//! Built-in frame-graph workload profiles.
//!
//! The named entries below are the graph analogue of the policy registry:
//! one table is the single source of truth, and every layer — `grsim
//! profiles` / `sequence --profile`, the runner, `tracegen dump-profile`,
//! `grserved` job specs, the fuzzer's trace plans, and the conformance
//! goldens — iterates or resolves it instead of hard-coding names.

use crate::graph::{FrameGraph, PassKind};

/// A named, registered frame-graph workload.
#[derive(Debug, Clone, Copy)]
pub struct GraphProfile {
    /// Registry name (also the trace `app` identity).
    pub name: &'static str,
    /// One-line description for CLI listings.
    pub description: &'static str,
    /// Frames the profile nominally exposes to sequence replay.
    pub frames: u32,
    /// Coherence used when the caller does not override it.
    pub default_coherence: f64,
    build: fn() -> FrameGraph,
}

impl GraphProfile {
    /// The profile's graph at its default coherence.
    pub fn graph(&self) -> FrameGraph {
        self.graph_with_coherence(self.default_coherence)
    }

    /// The profile's graph at an explicit coherence setting. The caller
    /// owns validating an out-of-range override (see
    /// [`FrameGraph::validate`]); only the built-in structure is asserted
    /// here.
    pub fn graph_with_coherence(&self, coherence: f64) -> FrameGraph {
        debug_assert!((self.build)().validate().is_ok(), "built-in profile must validate");
        (self.build)().coherence(coherence)
    }
}

fn deferred() -> FrameGraph {
    FrameGraph::new("deferred", 1280, 720)
        .texture_mb(128)
        .triangles_k(700)
        .pass(PassKind::ZPrepass)
        .pass(PassKind::GBuffer { targets: 3 })
        .pass(PassKind::DeferredLighting)
        .pass(PassKind::PostFx { passes: 2 })
        .pass(PassKind::Present)
}

fn shadowed() -> FrameGraph {
    FrameGraph::new("shadowed", 1280, 720)
        .texture_mb(96)
        .triangles_k(600)
        .pass(PassKind::ShadowMap { cascade: 0 })
        .pass(PassKind::ShadowMap { cascade: 1 })
        .pass(PassKind::ShadowMap { cascade: 2 })
        .pass(PassKind::ZPrepass)
        .pass(PassKind::Forward { overdraw: 1.4 })
        .pass(PassKind::Present)
}

fn postfx() -> FrameGraph {
    FrameGraph::new("postfx", 1280, 720)
        .texture_mb(64)
        .triangles_k(400)
        .pass(PassKind::Forward { overdraw: 1.2 })
        .pass(PassKind::PostFx { passes: 6 })
        .pass(PassKind::Present)
}

fn indirect() -> FrameGraph {
    FrameGraph::new("indirect", 1280, 720)
        .texture_mb(96)
        .triangles_k(900)
        .pass(PassKind::IndirectDraws { bursts: 96 })
        .pass(PassKind::GBuffer { targets: 2 })
        .pass(PassKind::DeferredLighting)
        .pass(PassKind::Present)
}

fn cpu_like() -> FrameGraph {
    FrameGraph::new("cpu-like", 64, 64)
        .texture_mb(1)
        .triangles_k(1)
        .pass(PassKind::Compute { footprint_log2: 26, chase: 0.35 })
}

/// Every built-in profile, in presentation order.
pub const GRAPH_PROFILES: &[GraphProfile] = &[
    GraphProfile {
        name: "deferred",
        description:
            "Z-prepass, 3-target G-buffer fill, far-flung deferred resolve, short post chain",
        frames: 8,
        default_coherence: 0.85,
        build: deferred,
    },
    GraphProfile {
        name: "shadowed",
        description: "three shadow cascades (Z-produced, TEX-consumed) feeding a forward pass",
        frames: 8,
        default_coherence: 0.9,
        build: shadowed,
    },
    GraphProfile {
        name: "postfx",
        description: "forward shading into a 6-hop full-screen RT->TEX ping-pong chain",
        frames: 8,
        default_coherence: 0.8,
        build: postfx,
    },
    GraphProfile {
        name: "indirect",
        description: "GPU-driven indirect draw bursts feeding a deferred G-buffer",
        frames: 8,
        default_coherence: 0.75,
        build: indirect,
    },
    GraphProfile {
        name: "cpu-like",
        description: "stream-free compute trace: streaming scan plus zipf pointer chasing",
        frames: 8,
        default_coherence: 0.6,
        build: cpu_like,
    },
];

/// Resolves a profile name (case-insensitive), mirroring
/// `registry::resolve` for policies.
pub fn graph_profile(name: &str) -> Option<&'static GraphProfile> {
    GRAPH_PROFILES.iter().find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_validates_and_matches_its_name() {
        for p in GRAPH_PROFILES {
            let g = p.graph();
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert_eq!(g.name(), p.name);
            assert_eq!(g.frame_coherence(), p.default_coherence);
            assert!(p.frames >= 1);
        }
    }

    #[test]
    fn names_are_unique_and_lookup_is_case_insensitive() {
        for (i, p) in GRAPH_PROFILES.iter().enumerate() {
            for q in &GRAPH_PROFILES[i + 1..] {
                assert_ne!(p.name, q.name);
            }
            assert_eq!(graph_profile(p.name).unwrap().name, p.name);
            assert_eq!(graph_profile(&p.name.to_uppercase()).unwrap().name, p.name);
        }
        assert!(graph_profile("not-a-profile").is_none());
    }

    #[test]
    fn coherence_override_changes_the_fingerprint() {
        let p = graph_profile("deferred").unwrap();
        assert_ne!(
            p.graph_with_coherence(0.2).fingerprint(),
            p.graph_with_coherence(0.9).fingerprint()
        );
    }
}
