//! End-to-end check that `GR_SIMD` selects the probe kernel at process
//! level: the full `grcheck invariants` sweep, spawned as a real process
//! the way CI runs it, must succeed and report the same policy/app
//! identity lines whether the environment pins the scalar loop
//! (`GR_SIMD=0`) or the widest vector kernel (`GR_SIMD=1`).
//!
//! Each spawned sweep already asserts bit-identical stats across its
//! internal checked/unchecked x mono/boxed x probe-kernel matrix; this
//! test adds the environment plumbing on top. It replays every registry
//! policy four-plus times per invocation, so it is `#[ignore]`d from the
//! default `cargo test` run — CI's determinism job runs it explicitly.

use std::process::Command;

/// The sweep's output with timing-dependent tails stripped: identity
/// lines keep their "N policies x M apps" facts, timing lines lose the
/// measured seconds.
fn normalized_output(gr_simd: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_grcheck"))
        .arg("invariants")
        .env("GR_SCALE", "tiny")
        .env("GR_FRAMES", "1")
        .env("GR_THREADS", "1")
        .env("GR_SIMD", gr_simd)
        .output()
        .expect("spawn grcheck");
    assert!(
        out.status.success(),
        "grcheck invariants failed under GR_SIMD={gr_simd}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    stdout
        .lines()
        .map(|line| line.split("; checked replay").next().unwrap_or(line))
        .collect::<Vec<_>>()
        .join("\n")
}

/// `GR_SIMD=0` (scalar per-access loop) and `GR_SIMD=1` (widest vector
/// kernel) produce the same invariant-sweep verdict line for line.
#[test]
#[ignore = "spawns two full invariant sweeps; CI runs it explicitly"]
fn invariant_sweep_is_identical_across_gr_simd() {
    let scalar = normalized_output("0");
    let simd = normalized_output("1");
    assert!(
        scalar.contains("invariants[mono]"),
        "sweep output missing the mono verdict:\n{scalar}"
    );
    assert_eq!(scalar, simd, "GR_SIMD=0 and GR_SIMD=1 sweeps reported different verdicts");
}
