//! The headline differential campaign: every registry policy replayed
//! against the reference model (and its oracle, where one exists) on
//! seeded fuzz traces, plus a mutation self-test proving the harness
//! actually catches fast-path corruption.

use grcheck::fuzz::{
    self, differential_replay, dump_reproducer, shrink, synth_trace, Fault, FuzzConfig,
};
use grcheck::optcheck::opt_misses;
use grtrace::Access;

/// Every registry policy (plus two parameterized GSPZTC spellings)
/// replays at least 10k seeded accesses against the reference model with
/// zero divergences, and no bypass-free policy beats the Belady bound.
#[test]
fn every_policy_agrees_with_its_reference_on_10k_accesses() {
    let llc = fuzz::fuzz_llc();
    for name in FuzzConfig::all_policies() {
        let mut replayed = 0usize;
        for case in 0..3u32 {
            let accesses = synth_trace(0xD1FF, case, 4096);
            let bound = opt_misses(&llc, &accesses);
            let stats = differential_replay(&llc, &name, &accesses, Fault::None)
                .unwrap_or_else(|d| panic!("{name} case {case}: {d:?}"));
            if stats.bypassed_reads + stats.bypassed_writes == 0 {
                assert!(
                    stats.total_misses() >= bound,
                    "{name} case {case} beat OPT: {} < {bound}",
                    stats.total_misses()
                );
            }
            replayed += accesses.len();
        }
        assert!(replayed >= 10_000, "{name}: only {replayed} accesses replayed");
    }
}

/// The same campaign on a small, differently shaped LLC (fewer ways, odd
/// bank count) so set-mapping bugs can't hide behind the default
/// geometry. `WayPart` is skipped: it asserts a 16-way cache.
#[test]
fn alternate_geometry_agrees_too() {
    let llc = fuzz::alt_llc();
    for name in FuzzConfig::all_policies() {
        if name == "WayPart" {
            continue;
        }
        for case in 0..2u32 {
            let accesses = synth_trace(0xA17, case, 4096);
            differential_replay(&llc, &name, &accesses, Fault::None)
                .unwrap_or_else(|d| panic!("{name} case {case}: {d:?}"));
        }
    }
}

/// Mutation self-test: corrupt the fast path's packed mirror tag after
/// the first access and demand the harness (a) notices, (b) shrinks the
/// reproducer to a handful of accesses, and (c) round-trips it through a
/// `.gtrace` artifact. Ignored in the default run because it exists to
/// validate the harness, not the simulator; CI runs it explicitly with
/// `cargo test -- --ignored`.
#[test]
#[ignore = "harness self-test; run explicitly with --ignored"]
fn injected_mirror_desync_is_caught_shrunk_and_dumped() {
    let llc = fuzz::fuzz_llc();
    let mut accesses = synth_trace(7, 0, 4096);
    // Guarantee a re-probe of the corrupted block so the desync is
    // reachable even if the generator never revisits it.
    let first = accesses[0];
    accesses.push(Access { addr: first.addr, stream: first.stream, write: false });

    let divergence = differential_replay(&llc, "DRRIP", &accesses, Fault::MirrorDesyncAfterFirst)
        .expect_err("corrupted mirror tag must diverge");
    assert!(divergence.index > 0, "corruption applies after access 0");

    let shrunk = shrink(&llc, "DRRIP", &accesses, Fault::MirrorDesyncAfterFirst);
    assert!(shrunk.len() <= 100, "reproducer did not shrink: {} accesses remain", shrunk.len());
    differential_replay(&llc, "DRRIP", &shrunk, Fault::MirrorDesyncAfterFirst)
        .expect_err("shrunk reproducer must still diverge");

    let dir = std::env::temp_dir().join(format!("grcheck-selftest-{}", std::process::id()));
    let path = dump_reproducer(&dir, "DRRIP", 7, 0, &shrunk).expect("dump reproducer");
    let trace = grtrace::io::read(std::fs::File::open(&path).expect("open reproducer"))
        .expect("reproducer parses");
    assert_eq!(trace.accesses(), &shrunk[..], "artifact round-trip");
    std::fs::remove_dir_all(&dir).ok();
}
