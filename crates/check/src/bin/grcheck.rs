//! `grcheck` — the verification front end.
//!
//! ```text
//! grcheck fuzz [--seed N] [--cases K] [--accesses M] [--policies A,B] [--out DIR]
//! grcheck conformance [--apps N] [--mb MB]
//! grcheck invariants
//! ```
//!
//! * `fuzz` runs a deterministic differential campaign: synthesized traces
//!   replayed through the fast path, a reference-model clone, and (where
//!   one exists) an independent oracle. Divergences are shrunk and dumped
//!   as `.gtrace` reproducers; the process exits 1 if any are found.
//! * `conformance` replays cached frames and asserts paper-level numbers
//!   (OPT agreement, Belady lower bound, pinned hit-rate goldens,
//!   GSPC-vs-baseline miss ratios).
//! * `invariants` replays the workload through every registry policy
//!   across the full checked/unchecked x mono/boxed matrix plus every
//!   probe kernel the host supports (scalar, portable, SSE2, AVX2),
//!   asserts bit-identical stats everywhere, and reports the
//!   checked-replay overhead (budget: 3x).
//!
//! `conformance` and `invariants` honour `GR_SCALE` / `GR_FRAMES`.

use grbench::{run_workload, ExperimentConfig, RunOptions};
use grcache::ProbeKind;
use grcheck::{conform, fuzz};
use gspc::registry;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: grcheck <fuzz [--seed N] [--cases K] [--accesses M] [--policies A,B] \
         [--out DIR] | conformance [--apps N] [--mb MB] | invariants>"
    );
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    let value = args.get(pos + 1).unwrap_or_else(|| usage());
    Some(value.parse().unwrap_or_else(|_| usage()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => run_fuzz(&args[1..]),
        Some("conformance") => run_conformance(&args[1..]),
        Some("invariants") => run_invariants(),
        _ => usage(),
    }
}

fn run_fuzz(args: &[String]) {
    let mut cfg = fuzz::FuzzConfig::smoke(1);
    if let Some(seed) = parse_flag(args, "--seed") {
        cfg.seed = seed;
    }
    if let Some(cases) = parse_flag(args, "--cases") {
        cfg.cases = cases;
    }
    if let Some(accesses) = parse_flag(args, "--accesses") {
        cfg.accesses_per_case = accesses;
    }
    if let Some(list) = parse_flag::<String>(args, "--policies") {
        cfg.policies = list.split(',').map(str::to_string).collect();
        for p in &cfg.policies {
            if registry::create(p, &fuzz::fuzz_llc()).is_none() {
                eprintln!("unknown policy {p}; try `grsim policies`");
                std::process::exit(1);
            }
        }
    }
    cfg.out_dir = Some(
        parse_flag::<PathBuf>(args, "--out")
            .unwrap_or_else(|| std::env::temp_dir().join("grcheck-repro")),
    );

    let report = fuzz::run_campaign(&cfg);
    println!(
        "fuzz: seed {}, {} cases x {} policies, {} accesses replayed differentially",
        cfg.seed,
        report.cases,
        cfg.policies.len(),
        report.replayed_accesses
    );
    if report.failures.is_empty() {
        println!("fuzz: no divergences");
        return;
    }
    for f in &report.failures {
        eprintln!(
            "DIVERGENCE {} case {} access {}: {} (shrunk to {} accesses{})",
            f.policy,
            f.case,
            f.index,
            f.detail,
            f.reproducer_len,
            f.artifact
                .as_ref()
                .map(|p| format!(", reproducer {}", p.display()))
                .unwrap_or_default()
        );
    }
    eprintln!("fuzz: {} divergence(s)", report.failures.len());
    std::process::exit(1);
}

fn run_conformance(args: &[String]) {
    let cfg = ExperimentConfig::from_env();
    let apps: usize = parse_flag(args, "--apps").unwrap_or(2);
    let mb: u64 = parse_flag(args, "--mb").unwrap_or(8);
    let report = conform::run(&cfg, apps, mb);
    let profiles = conform::run_profiles(mb);
    let ordering = conform::run_figure_ordering();
    println!(
        "conformance: {} checks, {} failure(s); profiles: {} checks, {} failure(s); \
         figure ordering: {} checks, {} failure(s)",
        report.checks,
        report.failures.len(),
        profiles.checks,
        profiles.failures.len(),
        ordering.checks,
        ordering.failures.len()
    );
    if !report.is_pass() || !profiles.is_pass() || !ordering.is_pass() {
        for f in report.failures.iter().chain(&profiles.failures).chain(&ordering.failures) {
            eprintln!("FAIL {f}");
        }
        std::process::exit(1);
    }
}

/// Replays every registry policy checked and unchecked, through both the
/// monomorphized and boxed dispatch paths and under every probe kernel the
/// host supports, asserting identical stats everywhere and a bounded
/// slowdown from the invariant observer.
fn run_invariants() {
    let cfg = ExperimentConfig::from_env();
    let policies: Vec<String> = registry::ALL_POLICIES.iter().map(|e| e.name.to_string()).collect();
    let base = |boxed: bool, check: bool, probe: Option<ProbeKind>| RunOptions {
        policies: policies.clone(),
        boxed,
        check,
        probe,
        streamed: false,
        ..RunOptions::misses(&[])
    };
    let mut runs = Vec::new();
    let mut reference = None;
    for boxed in [false, true] {
        let mut timings = [0.0f64; 2];
        let mut results = Vec::new();
        for check in [false, true] {
            // The unchecked leg pins the scalar kernel so the probe sweep
            // below compares every vector kernel against a scalar-produced
            // reference; the checked leg keeps the default (`GR_SIMD`).
            let probe = (!check).then_some(ProbeKind::Scalar);
            let r = run_workload(&base(boxed, check, probe), &cfg);
            timings[check as usize] = r.perf.replay_seconds;
            results.push(r);
        }
        let (plain, checked) = (&results[0], &results[1]);
        for p in &policies {
            for app in plain.apps.clone() {
                assert_eq!(
                    plain.get(p, &app).stats,
                    checked.get(p, &app).stats,
                    "{p}/{app}: checked replay changed the stats (boxed={boxed})"
                );
            }
        }
        let ratio = timings[1] / timings[0].max(1e-9);
        let path = if boxed { "boxed" } else { "mono" };
        println!(
            "invariants[{path}]: {} policies x {} apps identical; \
             checked replay {:.2}s vs {:.2}s unchecked ({ratio:.2}x)",
            policies.len(),
            plain.apps.len(),
            timings[1],
            timings[0]
        );
        runs.push((path, ratio));
        if reference.is_none() {
            reference = Some(results.swap_remove(0));
        }
    }
    // Probe-kernel sweep: every available kernel, through both dispatch
    // paths, must reproduce the scalar reference bit for bit.
    let reference = reference.expect("mono sweep ran");
    for kind in ProbeKind::all_available() {
        if kind == ProbeKind::Scalar {
            continue; // the reference itself
        }
        for boxed in [false, true] {
            let r = run_workload(&base(boxed, false, Some(kind)), &cfg);
            for p in &policies {
                for app in reference.apps.clone() {
                    assert_eq!(
                        reference.get(p, &app).stats,
                        r.get(p, &app).stats,
                        "{p}/{app}: {kind:?} probe kernel diverged from scalar (boxed={boxed})"
                    );
                }
            }
            let path = if boxed { "boxed" } else { "mono" };
            println!(
                "invariants[{path}/{kind:?}]: {} policies x {} apps identical to scalar",
                policies.len(),
                reference.apps.len()
            );
        }
    }
    run_profile_invariants(&cfg, &policies);
    let mut failed = false;
    for (path, ratio) in runs {
        if ratio > 3.0 {
            eprintln!("FAIL invariants[{path}]: checked replay {ratio:.2}x > 3x budget");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Frame-graph profile sweep: for every built-in profile, the streamed
/// generator must emit exactly the materialized render, the `.gtrace`
/// export must import back bit-identically, and frame-0 replay stats must
/// agree across mono/boxed dispatch and every probe kernel the host
/// supports.
fn run_profile_invariants(cfg: &ExperimentConfig, policies: &[String]) {
    use grbench::simulate_graph_cell;
    use grsynth::{GraphRenderer, GraphStream, GRAPH_PROFILES};
    use grtrace::AccessSource;

    for profile in GRAPH_PROFILES {
        let graph = profile.graph();
        let trace = GraphRenderer::new(&graph, 0, cfg.scale).render();

        let mut streamed = Vec::with_capacity(trace.len());
        let mut source = GraphStream::new(&graph, 0, cfg.scale);
        while source.advance().expect("synthesized source cannot fail") {
            streamed.extend_from_slice(source.chunk().accesses);
        }
        assert_eq!(
            streamed,
            trace.accesses(),
            "{}: streamed generator diverged from materialized render",
            profile.name
        );

        let mut bytes = Vec::new();
        grtrace::io::write(&mut bytes, &trace).expect("in-memory export cannot fail");
        let imported = grtrace::import(&bytes[..])
            .unwrap_or_else(|e| panic!("{}: exported trace failed validation: {e}", profile.name));
        assert_eq!(
            imported.accesses(),
            trace.accesses(),
            "{}: .gtrace round trip changed the accesses",
            profile.name
        );

        let base = |boxed: bool, probe: Option<ProbeKind>| RunOptions {
            boxed,
            probe,
            streamed: false,
            ..RunOptions::misses(&[])
        };
        for name in policies {
            let reference =
                simulate_graph_cell(name, &graph, 0, &base(false, Some(ProbeKind::Scalar)), cfg);
            for kind in ProbeKind::all_available() {
                for boxed in [false, true] {
                    if !boxed && kind == ProbeKind::Scalar {
                        continue; // the reference itself
                    }
                    let r = simulate_graph_cell(name, &graph, 0, &base(boxed, Some(kind)), cfg);
                    assert_eq!(
                        reference.stats, r.stats,
                        "{}/{name}: {kind:?} probe (boxed={boxed}) diverged from scalar/mono",
                        profile.name
                    );
                }
            }
        }
        println!(
            "invariants[profile/{}]: stream == render ({} accesses), round trip identical, \
             {} policies x {} kernels x mono/boxed identical",
            profile.name,
            trace.len(),
            policies.len(),
            ProbeKind::all_available().len()
        );
    }
}
