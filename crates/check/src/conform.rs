//! Paper-fidelity conformance checks over cached synthesized frames.
//!
//! Where the fuzzer ([`crate::fuzz`]) asks "do the two implementations
//! agree with each other?", this module asks "do the numbers still look
//! like the paper's?". It replays real cached frames (via
//! [`grbench::framecache`]) through the registry's conformance panel —
//! every `ALL_POLICIES` row whose metadata opts in — and checks:
//!
//! * the production `OPT` replay matches the independent
//!   [`crate::optcheck::opt_misses`] bound exactly;
//! * no bypass-free policy ever beats that bound (so an OPT-*trained*
//!   policy like `GOPT` can approach but never pass its teacher);
//! * hits + misses account for every access (conservation);
//! * every miss-ratio ceiling declared in the registry holds: GSPC keeps
//!   its headline edge over SRRIP/DRRIP, GOPT beats its SRRIP baseline
//!   (figure-level fidelity);
//! * at the pinned configuration (`Scale::Tiny`, frame 0 of the first
//!   app), per-stream hit rates match any goldens the registry pins for
//!   the policy, so silent drift in the generator or replay loop fails
//!   loudly.
//!
//! The panel, the ceilings, and the goldens all live in the registry
//! metadata ([`gspc::registry::Conformance`]); the only policy names this
//! module spells itself are the pinned DRRIP/GSPC fixtures in the
//! frame-graph profile golden table ([`run_profiles`]).

use grbench::figures::{self, CountedCell};
use grbench::{framecache, simulate_cell, ExperimentConfig, RunOptions};
use grcache::{Llc, LlcConfig, LlcStats};
use grsynth::{AppProfile, GraphRenderer, Scale, GRAPH_PROFILES};
use grtrace::StreamId;
use gspc::registry::{self, PolicyEntry};

use crate::optcheck::opt_misses;

/// The conformance panel: every registry row that opts in via
/// [`registry::Conformance::panel`], in table order. A deliberate
/// cross-section — the paper's baselines, the graphics-aware proposals,
/// the OPT-trained predictor, and the offline bound itself.
pub fn panel() -> Vec<&'static PolicyEntry> {
    registry::ALL_POLICIES.iter().filter(|e| e.meta.conformance.panel).collect()
}

/// Absolute tolerance on golden hit rates.
const GOLDEN_TOLERANCE: f64 = 0.02;

/// Outcome of a conformance run.
#[derive(Debug, Default)]
pub struct ConformanceReport {
    /// Individual assertions evaluated.
    pub checks: u64,
    /// Human-readable description of every failed assertion.
    pub failures: Vec<String>,
}

impl ConformanceReport {
    /// True when every check passed.
    pub fn is_pass(&self) -> bool {
        self.failures.is_empty()
    }

    fn check(&mut self, ok: bool, failure: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.failures.push(failure());
        }
    }
}

/// Replays one cached frame through `name`, returning the final stats.
fn replay(llc_cfg: LlcConfig, name: &str, data: &framecache::FrameData) -> LlcStats {
    let mut llc = Llc::new(llc_cfg, registry::create(name, &llc_cfg).expect("panel policy"));
    if registry::needs_next_use(name) {
        llc.run_source(&mut data.trace.source_annotated(data.next_use()))
            .expect("in-memory replay cannot fail");
    } else {
        llc.run_source(&mut data.trace.source()).expect("in-memory replay cannot fail");
    }
    llc.stats().clone()
}

/// Runs the conformance suite over the first `apps` application profiles
/// at `cfg`'s scale, one frame each, on a `paper_mb`-equivalent LLC.
pub fn run(cfg: &ExperimentConfig, apps: usize, paper_mb: u64) -> ConformanceReport {
    let llc_cfg = cfg.llc(paper_mb);
    let profiles = AppProfile::all();
    let picked = &profiles[..apps.clamp(1, profiles.len())];
    let mut report = ConformanceReport::default();
    let members = panel();
    let mut totals: Vec<u64> = vec![0; members.len()];

    for (app_index, app) in picked.iter().enumerate() {
        let data = framecache::frame_data(app, 0, cfg.scale);
        let total = data.trace.len() as u64;
        let bound = opt_misses(&llc_cfg, data.trace.accesses());

        for (slot, entry) in members.iter().enumerate() {
            let name = entry.name;
            let stats = replay(llc_cfg, name, &data);
            totals[slot] += stats.total_misses();

            report.check(stats.total_accesses() == total, || {
                format!(
                    "{}/{name}: serviced {} of {total} accesses",
                    app.abbrev,
                    stats.total_accesses()
                )
            });

            if name == "OPT" {
                report.check(stats.total_misses() == bound, || {
                    format!(
                        "{}/OPT: production replay {} misses vs independent Belady {bound}",
                        app.abbrev,
                        stats.total_misses()
                    )
                });
            } else if stats.bypassed_reads + stats.bypassed_writes == 0 {
                report.check(stats.total_misses() >= bound, || {
                    format!(
                        "{}/{name}: {} misses beat the Belady bound {bound}",
                        app.abbrev,
                        stats.total_misses()
                    )
                });
            }

            // Golden per-stream rates, pinned to one exact configuration.
            if app_index == 0 && cfg.scale == Scale::Tiny {
                for &(stream, expected) in entry.meta.conformance.goldens {
                    let got = stats.hit_rate(stream);
                    report.check((got - expected).abs() <= GOLDEN_TOLERANCE, || {
                        format!(
                            "{}/{name} {} hit rate {got:.4} drifted from golden {expected:.4}",
                            app.abbrev,
                            stream.label()
                        )
                    });
                }
            }
        }
    }

    let misses_of = |name: &str| {
        members
            .iter()
            .position(|e| e.name == name)
            .map(|slot| totals[slot])
            .expect("ceiling baseline in panel (registry metadata test enforces this)")
    };
    for entry in &members {
        for &(baseline, factor) in entry.meta.conformance.ceilings {
            let ours = misses_of(entry.name);
            let theirs = misses_of(baseline);
            report.check(ours as f64 <= factor * theirs as f64, || {
                format!(
                    "{} lost its edge: {ours} misses vs {theirs} for {baseline} \
                     (ceiling {factor:.2}x)",
                    entry.name
                )
            });
        }
    }
    report
}

/// Golden numbers for one built-in frame-graph profile at the pinned
/// configuration (`Scale::Tiny`, frame 0, default coherence): exact
/// per-stream access counts out of the generator, and overall DRRIP/GSPC
/// hit rates on an 8 MB-class LLC within [`GOLDEN_TOLERANCE`].
struct ProfileGolden {
    /// Registry name in [`GRAPH_PROFILES`].
    profile: &'static str,
    /// Exact access count per stream; streams not listed must be absent.
    accesses: &'static [(StreamId, u64)],
    /// Overall DRRIP hit rate at the pinned configuration.
    drrip_hit_rate: f64,
    /// Overall GSPC hit rate at the pinned configuration.
    gspc_hit_rate: f64,
}

/// Regenerate with
/// `cargo run --release -p grcheck --example profile_goldens_gen`.
const PROFILE_GOLDENS: &[ProfileGolden] = &[
    ProfileGolden {
        profile: "deferred",
        accesses: &[
            (StreamId::Vertex, 87),
            (StreamId::VertexIndex, 11),
            (StreamId::HiZ, 960),
            (StreamId::Z, 960),
            (StreamId::RenderTarget, 11040),
            (StreamId::Texture, 6001),
            (StreamId::Display, 920),
            (StreamId::Other, 971),
        ],
        drrip_hit_rate: 0.3212,
        gspc_hit_rate: 0.3483,
    },
    ProfileGolden {
        profile: "shadowed",
        accesses: &[
            (StreamId::Vertex, 75),
            (StreamId::VertexIndex, 9),
            (StreamId::HiZ, 960),
            (StreamId::Z, 1720),
            (StreamId::RenderTarget, 1840),
            (StreamId::Texture, 1705),
            (StreamId::Display, 920),
            (StreamId::Other, 1160),
        ],
        drrip_hit_rate: 0.2059,
        gspc_hit_rate: 0.2025,
    },
    ProfileGolden {
        profile: "postfx",
        accesses: &[
            (StreamId::Vertex, 50),
            (StreamId::VertexIndex, 6),
            (StreamId::HiZ, 960),
            (StreamId::Z, 960),
            (StreamId::RenderTarget, 6480),
            (StreamId::Texture, 3869),
            (StreamId::Display, 920),
            (StreamId::Other, 481),
        ],
        drrip_hit_rate: 0.4682,
        gspc_hit_rate: 0.3750,
    },
    ProfileGolden {
        profile: "indirect",
        accesses: &[
            (StreamId::Vertex, 11575),
            (StreamId::VertexIndex, 8373),
            (StreamId::HiZ, 960),
            (StreamId::Z, 960),
            (StreamId::RenderTarget, 5520),
            (StreamId::Texture, 3360),
            (StreamId::Display, 920),
            (StreamId::Other, 1345),
        ],
        drrip_hit_rate: 0.6058,
        gspc_hit_rate: 0.5939,
    },
    ProfileGolden {
        profile: "cpu-like",
        accesses: &[(StreamId::Other, 23359)],
        drrip_hit_rate: 0.2281,
        gspc_hit_rate: 0.2230,
    },
];

/// Runs the frame-graph profile golden suite: per-stream access counts
/// must match exactly (the generator is deterministic, so any drift is a
/// real behavior change), and the pinned DRRIP/GSPC hit rates must stay
/// within tolerance. Always evaluated at the pinned `Scale::Tiny`
/// configuration regardless of `GR_SCALE`.
pub fn run_profiles(paper_mb: u64) -> ConformanceReport {
    let cfg = ExperimentConfig { scale: Scale::Tiny, frames_per_app: Some(1) };
    let llc_cfg = cfg.llc(paper_mb);
    let mut report = ConformanceReport::default();
    report.check(
        PROFILE_GOLDENS.len() == GRAPH_PROFILES.len()
            && GRAPH_PROFILES.iter().all(|p| PROFILE_GOLDENS.iter().any(|g| g.profile == p.name)),
        || "profile golden table out of sync with GRAPH_PROFILES".to_string(),
    );

    for golden in PROFILE_GOLDENS {
        let Some(profile) = grsynth::graph_profile(golden.profile) else {
            continue; // already flagged by the sync check above
        };
        let trace = GraphRenderer::new(&profile.graph(), 0, Scale::Tiny).render();

        for stream in StreamId::ALL {
            let got = trace.accesses().iter().filter(|a| a.stream == stream).count() as u64;
            let expected =
                golden.accesses.iter().find(|(s, _)| *s == stream).map_or(0, |(_, n)| *n);
            report.check(got == expected, || {
                format!(
                    "{}: {} access count {got} != golden {expected}",
                    golden.profile,
                    stream.label()
                )
            });
        }

        for (name, expected) in [("DRRIP", golden.drrip_hit_rate), ("GSPC", golden.gspc_hit_rate)] {
            let mut llc =
                Llc::new(llc_cfg, registry::create(name, &llc_cfg).expect("golden policy"));
            llc.run_source(&mut trace.source()).expect("in-memory replay cannot fail");
            let stats = llc.stats();
            let got = stats.total_hits() as f64 / stats.total_accesses() as f64;
            report.check((got - expected).abs() <= GOLDEN_TOLERANCE, || {
                format!(
                    "{}/{name}: hit rate {got:.4} drifted from golden {expected:.4}",
                    golden.profile
                )
            });
        }
    }
    report
}

/// Relative slack on the Figure 15 FPS ordering: an adjacent pair of the
/// panel may invert by at most this fraction before the check fails.
const ORDERING_TOLERANCE: f64 = 0.02;

/// Pins the paper's qualitative Figure 15 claim at the kick-tires scale:
/// sweeping the +UCD performance panel over every app, the count-driven
/// FPS ([`figures::fps_from_counts`] on the [`figures::fig15`] machine)
/// must respect [`figures::PERF_FPS_ORDER`] — GSPC ≥ GS-DRRIP ≥ DRRIP ≥
/// NRU — within [`ORDERING_TOLERANCE`]. Always evaluated at the pinned
/// `Scale::Tiny` configuration regardless of `GR_SCALE`, like
/// [`run_profiles`], so the golden stays one exact workload.
pub fn run_figure_ordering() -> ConformanceReport {
    let cfg = ExperimentConfig { scale: Scale::Tiny, frames_per_app: Some(1) };
    let panel = figures::fig15();
    let opts = RunOptions { llc_paper_mb: panel.llc_mb, ..RunOptions::misses(&[]) };

    let mut fps = Vec::new();
    for name in figures::PERF_FPS_ORDER {
        let mut cell = CountedCell::default();
        for app in &AppProfile::all() {
            let r = simulate_cell(name, app, 0, &opts, &cfg);
            cell.merge(&CountedCell {
                frames: 1,
                accesses: r.stats.total_accesses(),
                misses: r.stats.total_misses(),
                writebacks: r.stats.writebacks,
                shaded_pixels: r.work.shaded_pixels,
                texel_samples: r.work.texel_samples,
                vertices: r.work.vertices,
            });
        }
        fps.push((name, figures::fps_from_counts(&panel, &cell)));
    }

    let mut report = ConformanceReport::default();
    for pair in fps.windows(2) {
        let (worse, a) = pair[0];
        let (better, b) = pair[1];
        report.check(b >= a * (1.0 - ORDERING_TOLERANCE), || {
            format!(
                "figure-15 ordering inverted: {better} {b:.2} FPS < {worse} {a:.2} FPS \
                 (tolerance {ORDERING_TOLERANCE:.0}%)",
                ORDERING_TOLERANCE = ORDERING_TOLERANCE * 100.0
            )
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full suite at tiny scale over one app: every check green,
    /// including the pinned goldens and the registry-declared ratios.
    #[test]
    fn tiny_conformance_is_green() {
        let cfg = ExperimentConfig { scale: Scale::Tiny, frames_per_app: Some(1) };
        let report = run(&cfg, 1, 8);
        assert!(report.checks > 10, "suite ran only {} checks", report.checks);
        assert!(report.is_pass(), "conformance failures:\n{}", report.failures.join("\n"));
    }

    /// Every built-in frame-graph profile has a golden row, and the whole
    /// profile suite is green: exact stream counts plus pinned DRRIP/GSPC
    /// hit rates.
    #[test]
    fn profile_goldens_are_green() {
        let report = run_profiles(8);
        let expected = 1 + GRAPH_PROFILES.len() as u64 * (StreamId::ALL.len() as u64 + 2);
        assert_eq!(report.checks, expected, "profile suite skipped checks");
        assert!(report.is_pass(), "profile golden failures:\n{}", report.failures.join("\n"));
    }

    /// The pinned Figure 15 FPS ordering holds at the kick-tires scale:
    /// three adjacent-pair checks, all green.
    #[test]
    fn figure_ordering_is_green() {
        let report = run_figure_ordering();
        assert_eq!(report.checks, figures::PERF_FPS_ORDER.len() as u64 - 1);
        assert!(report.is_pass(), "ordering failures:\n{}", report.failures.join("\n"));
    }

    /// The panel comes from registry metadata and keeps its paper
    /// cross-section: baselines, the GSPC family, OPT, and the
    /// OPT-trained GOPT.
    #[test]
    fn panel_is_registry_driven() {
        let names: Vec<&str> = panel().iter().map(|e| e.name).collect();
        for required in ["DRRIP", "SRRIP", "GSPC", "OPT", "GOPT"] {
            assert!(names.contains(&required), "{required} missing from panel");
        }
        assert!(names.len() >= 9, "panel shrank to {names:?}");
    }
}
