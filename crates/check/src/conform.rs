//! Paper-fidelity conformance checks over cached synthesized frames.
//!
//! Where the fuzzer ([`crate::fuzz`]) asks "do the two implementations
//! agree with each other?", this module asks "do the numbers still look
//! like the paper's?". It replays real cached frames (via
//! [`grbench::framecache`]) through a panel of policies and checks:
//!
//! * the production `OPT` replay matches the independent
//!   [`crate::optcheck::opt_misses`] bound exactly;
//! * no bypass-free policy ever beats that bound;
//! * hits + misses account for every access (conservation);
//! * GSPC-family policies still deliver their headline miss reduction
//!   over the SRRIP/DRRIP baselines (figure-level fidelity);
//! * at the pinned configuration (`Scale::Tiny`, frame 0 of the first
//!   app), per-stream DRRIP hit rates match recorded goldens within a
//!   small tolerance, so silent drift in the generator or replay loop
//!   fails loudly.

use grbench::{framecache, ExperimentConfig};
use grcache::{Llc, LlcConfig, LlcStats};
use grsynth::{AppProfile, Scale};
use grtrace::StreamId;
use gspc::registry;

use crate::optcheck::opt_misses;

/// Policies replayed by the conformance suite. A deliberate cross-section:
/// the paper's baselines, the graphics-aware proposals, a bypassing
/// variant, and the offline bound.
pub const PANEL: &[&str] =
    &["NRU", "LRU", "SRRIP", "DRRIP", "SHiP-mem", "GSPZTC", "GSPC", "GSPC+UCD", "OPT"];

/// Per-stream DRRIP hit-rate goldens for `Scale::Tiny`, frame 0 of the
/// first application profile, on the suite's quarter-size LLC. Recorded
/// from a known-good build; the suite only applies them at exactly that
/// configuration.
const DRRIP_TINY_GOLDENS: &[(StreamId, f64)] =
    &[(StreamId::Texture, 0.2203), (StreamId::Z, 0.0008), (StreamId::RenderTarget, 0.7122)];

/// Absolute tolerance on golden hit rates.
const GOLDEN_TOLERANCE: f64 = 0.02;

/// Aggregate miss ratios (policy vs baseline) asserted by the suite.
/// GSPC must not lose its edge over the memory-centric baselines:
/// `misses(policy) <= factor * misses(baseline)` summed over every frame
/// the suite replays.
const MISS_RATIO_CEILINGS: &[(&str, &str, f64)] =
    &[("GSPC", "DRRIP", 1.00), ("GSPC", "SRRIP", 1.00), ("GSPC+UCD", "DRRIP", 1.00)];

/// Outcome of a conformance run.
#[derive(Debug, Default)]
pub struct ConformanceReport {
    /// Individual assertions evaluated.
    pub checks: u64,
    /// Human-readable description of every failed assertion.
    pub failures: Vec<String>,
}

impl ConformanceReport {
    /// True when every check passed.
    pub fn is_pass(&self) -> bool {
        self.failures.is_empty()
    }

    fn check(&mut self, ok: bool, failure: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.failures.push(failure());
        }
    }
}

/// Replays one cached frame through `name`, returning the final stats.
fn replay(llc_cfg: LlcConfig, name: &str, data: &framecache::FrameData) -> LlcStats {
    let mut llc = Llc::new(llc_cfg, registry::create(name, &llc_cfg).expect("panel policy"));
    if registry::needs_next_use(name) {
        llc.run_source(&mut data.trace.source_annotated(data.next_use()))
            .expect("in-memory replay cannot fail");
    } else {
        llc.run_source(&mut data.trace.source()).expect("in-memory replay cannot fail");
    }
    llc.stats().clone()
}

/// Runs the conformance suite over the first `apps` application profiles
/// at `cfg`'s scale, one frame each, on a `paper_mb`-equivalent LLC.
pub fn run(cfg: &ExperimentConfig, apps: usize, paper_mb: u64) -> ConformanceReport {
    let llc_cfg = cfg.llc(paper_mb);
    let profiles = AppProfile::all();
    let picked = &profiles[..apps.clamp(1, profiles.len())];
    let mut report = ConformanceReport::default();
    let mut totals: Vec<(&str, u64)> = PANEL.iter().map(|&p| (p, 0u64)).collect();

    for (app_index, app) in picked.iter().enumerate() {
        let data = framecache::frame_data(app, 0, cfg.scale);
        let total = data.trace.len() as u64;
        let bound = opt_misses(&llc_cfg, data.trace.accesses());

        for (slot, &name) in PANEL.iter().enumerate() {
            let stats = replay(llc_cfg, name, &data);
            totals[slot].1 += stats.total_misses();

            report.check(stats.total_accesses() == total, || {
                format!(
                    "{}/{name}: serviced {} of {total} accesses",
                    app.abbrev,
                    stats.total_accesses()
                )
            });

            if name == "OPT" {
                report.check(stats.total_misses() == bound, || {
                    format!(
                        "{}/OPT: production replay {} misses vs independent Belady {bound}",
                        app.abbrev,
                        stats.total_misses()
                    )
                });
            } else if stats.bypassed_reads + stats.bypassed_writes == 0 {
                report.check(stats.total_misses() >= bound, || {
                    format!(
                        "{}/{name}: {} misses beat the Belady bound {bound}",
                        app.abbrev,
                        stats.total_misses()
                    )
                });
            }

            // Golden per-stream rates, pinned to one exact configuration.
            if name == "DRRIP" && app_index == 0 && cfg.scale == Scale::Tiny {
                for &(stream, expected) in DRRIP_TINY_GOLDENS {
                    let got = stats.hit_rate(stream);
                    report.check((got - expected).abs() <= GOLDEN_TOLERANCE, || {
                        format!(
                            "{}/DRRIP {} hit rate {got:.4} drifted from golden {expected:.4}",
                            app.abbrev,
                            stream.label()
                        )
                    });
                }
            }
        }
    }

    let misses_of = |name: &str| {
        totals.iter().find(|(p, _)| *p == name).map(|&(_, m)| m).expect("panel member")
    };
    for &(policy, baseline, factor) in MISS_RATIO_CEILINGS {
        let ours = misses_of(policy);
        let theirs = misses_of(baseline);
        report.check(ours as f64 <= factor * theirs as f64, || {
            format!(
                "{policy} lost its edge: {ours} misses vs {theirs} for {baseline} \
                 (ceiling {factor:.2}x)"
            )
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full suite at tiny scale over one app: every check green,
    /// including the pinned goldens and the GSPC-vs-baseline ratios.
    #[test]
    fn tiny_conformance_is_green() {
        let cfg = ExperimentConfig { scale: Scale::Tiny, frames_per_app: Some(1) };
        let report = run(&cfg, 1, 8);
        assert!(report.checks > 10, "suite ran only {} checks", report.checks);
        assert!(report.is_pass(), "conformance failures:\n{}", report.failures.join("\n"));
    }
}
