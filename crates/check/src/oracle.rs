//! Reference oracles: independent reimplementations of the registry
//! policies.
//!
//! Each oracle here is written in the most obvious style available — side
//! tables keyed by `(bank, set)`, plain `bool`/`u8`/`u64` per-way state,
//! the textbook scan-and-age RRIP victim loop — and deliberately never
//! touches [`Block::meta`]. A production policy that packs its state into
//! the metadata word incorrectly therefore diverges from its oracle on the
//! first decision the corruption influences.
//!
//! [`oracle_for`] maps a registry name to its oracle; policies without one
//! (the auxiliary baselines) still get differential coverage through the
//! registry-clone replay in [`crate::fuzz`].

use std::collections::HashMap;

use grcache::{AccessInfo, Block, FillInfo, LlcConfig, Policy};
use grtrace::{PolicyClass, StreamId};

/// Builds the independent oracle for a registry policy name, or `None`
/// when the policy has no oracle (it is then verified against a registry
/// clone only).
pub fn oracle_for(name: &str, cfg: &LlcConfig) -> Option<Box<dyn Policy>> {
    if let Some(t) = name
        .strip_prefix("GSPZTC(t=")
        .and_then(|s| s.strip_suffix(')'))
        .and_then(|s| s.parse::<u32>().ok())
    {
        return t.is_power_of_two().then(|| Box::new(OracleGspztc::new(cfg, t)) as Box<dyn Policy>);
    }
    Some(match name {
        "NRU" => Box::new(OracleNru::new()),
        "LRU" => Box::new(OracleLru::new()),
        "SRRIP" | "SRRIP-2" => Box::new(OracleSrrip::new(2)),
        "DRRIP" | "DRRIP-2" => Box::new(OracleDrrip::new(2)),
        "DRRIP-4" => Box::new(OracleDrrip::new(4)),
        "SHiP-mem" => Box::new(OracleShip::new(cfg)),
        "GSPZTC" => Box::new(OracleGspztc::new(cfg, 8)),
        "GSPZTC+TSE" => Box::new(OracleTse::new(cfg, 8, false, false)),
        "GSPC" => Box::new(OracleTse::new(cfg, 8, true, false)),
        "GSPC+BYP" => Box::new(OracleTse::new(cfg, 8, true, true)),
        "GSPC+UCD" => Box::new(OracleUcd::new(OracleTse::new(cfg, 8, true, false))),
        "DRRIP+UCD" => Box::new(OracleUcd::new(OracleDrrip::new(2))),
        "NRU+UCD" => Box::new(OracleUcd::new(OracleNru::new())),
        "OPT" => Box::new(OracleOpt::new()),
        _ => return None,
    })
}

/// Lazily allocated per-way side state, keyed by `(bank, set_in_bank)`.
#[derive(Debug, Clone)]
struct PerSet<W> {
    map: HashMap<(usize, usize), Vec<W>>,
}

impl<W: Clone + Default> PerSet<W> {
    fn new() -> Self {
        PerSet { map: HashMap::new() }
    }

    fn set(&mut self, a: &AccessInfo, ways: usize) -> &mut Vec<W> {
        self.map.entry((a.bank, a.set_in_bank)).or_insert_with(|| vec![W::default(); ways])
    }
}

/// The textbook RRIP victim loop: scan for a block at the distant RRPV,
/// aging every block by one until one appears, and take the first such way.
fn rrip_victim(rrpvs: &mut [u8], distant: u8) -> usize {
    loop {
        if let Some(i) = rrpvs.iter().position(|&r| r == distant) {
            return i;
        }
        for r in rrpvs.iter_mut() {
            *r += 1;
        }
    }
}

// --- SRRIP -----------------------------------------------------------------

#[derive(Debug, Clone)]
struct OracleSrrip {
    distant: u8,
    sets: PerSet<u8>,
}

impl OracleSrrip {
    fn new(bits: u32) -> Self {
        OracleSrrip { distant: ((1u32 << bits) - 1) as u8, sets: PerSet::new() }
    }
}

impl Policy for OracleSrrip {
    fn name(&self) -> &str {
        "oracle:SRRIP"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.sets.set(a, set.len())[way] = 0;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let distant = self.distant;
        rrip_victim(self.sets.set(a, set.len()), distant)
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        let rrpv = self.distant - 1;
        self.sets.set(a, set.len())[way] = rrpv;
        FillInfo::rrip(rrpv, self.distant)
    }
}

// --- DRRIP -----------------------------------------------------------------

#[derive(Debug, Clone)]
struct OracleDrrip {
    distant: u8,
    psel: u32,
    brrip_fills: u64,
    sets: PerSet<u8>,
}

/// DRRIP duel constants, spelled out: 10-bit PSEL, leaders at set residues
/// 1 (SRRIP) and 2 (BRRIP) modulo 64.
const PSEL_MAX: u32 = 1023;

impl OracleDrrip {
    fn new(bits: u32) -> Self {
        OracleDrrip {
            distant: ((1u32 << bits) - 1) as u8,
            psel: PSEL_MAX / 2,
            brrip_fills: 0,
            sets: PerSet::new(),
        }
    }
}

impl Policy for OracleDrrip {
    fn name(&self) -> &str {
        "oracle:DRRIP"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.sets.set(a, set.len())[way] = 0;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let distant = self.distant;
        rrip_victim(self.sets.set(a, set.len()), distant)
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        // The duel observes the miss before the insertion decision.
        match a.set_in_bank % 64 {
            1 if self.psel < PSEL_MAX => self.psel += 1,
            2 => self.psel = self.psel.saturating_sub(1),
            _ => {}
        }
        let use_brrip = match a.set_in_bank % 64 {
            1 => false,
            2 => true,
            _ => self.psel > PSEL_MAX / 2,
        };
        let rrpv = if use_brrip {
            self.brrip_fills += 1;
            if self.brrip_fills.is_multiple_of(32) {
                self.distant - 1
            } else {
                self.distant
            }
        } else {
            self.distant - 1
        };
        self.sets.set(a, set.len())[way] = rrpv;
        FillInfo::rrip(rrpv, self.distant)
    }
}

// --- SHiP-mem --------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct ShipWay {
    sig: u32,
    reused: bool,
    rrpv: u8,
}

#[derive(Debug, Clone)]
struct OracleShip {
    tables: Vec<HashMap<u32, u8>>,
    sets: PerSet<ShipWay>,
}

impl OracleShip {
    fn new(cfg: &LlcConfig) -> Self {
        OracleShip { tables: vec![HashMap::new(); cfg.banks], sets: PerSet::new() }
    }

    /// 14-bit region signature: block address bits [21:8].
    fn signature(block: u64) -> u32 {
        ((block >> 8) as u32) & ((1 << 14) - 1)
    }
}

impl Policy for OracleShip {
    fn name(&self) -> &str {
        "oracle:SHiP-mem"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        let w = &mut self.sets.set(a, set.len())[way];
        w.reused = true;
        w.rrpv = 0;
        let sig = w.sig;
        let c = self.tables[a.bank].entry(sig).or_insert(1);
        *c = (*c + 1).min(7);
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let ways = self.sets.set(a, set.len());
        let mut rr: Vec<u8> = ways.iter().map(|w| w.rrpv).collect();
        let v = rrip_victim(&mut rr, 3);
        for (w, r) in ways.iter_mut().zip(rr) {
            w.rrpv = r;
        }
        v
    }

    fn on_evict(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        let w = self.sets.set(a, set.len())[way].clone();
        if !w.reused {
            let c = self.tables[a.bank].entry(w.sig).or_insert(1);
            *c = c.saturating_sub(1);
        }
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        let sig = Self::signature(a.block);
        let dead = self.tables[a.bank].get(&sig).copied().unwrap_or(1) == 0;
        let rrpv = if dead { 3 } else { 2 };
        self.sets.set(a, set.len())[way] = ShipWay { sig, reused: false, rrpv };
        FillInfo::rrip(rrpv, 3)
    }
}

// --- Saturating counter file (shared by GSPZTC and TSE oracles) ------------

/// The GSPC per-bank counter file in plain integers: eight values
/// saturating at 255 and a 7-bit access counter whose saturation halves
/// everything.
#[derive(Debug, Clone, Default)]
struct Counts {
    fill_z: u32,
    hit_z: u32,
    fill_tex: [u32; 2],
    hit_tex: [u32; 2],
    prod: u32,
    cons: u32,
    acc: u32,
}

fn bump(v: &mut u32) {
    if *v < 255 {
        *v += 1;
    }
}

impl Counts {
    fn tick(&mut self) {
        self.acc += 1;
        if self.acc == 127 {
            self.fill_z /= 2;
            self.hit_z /= 2;
            for v in &mut self.fill_tex {
                *v /= 2;
            }
            for v in &mut self.hit_tex {
                *v /= 2;
            }
            self.prod /= 2;
            self.cons /= 2;
            self.acc = 0;
        }
    }

    fn z_below(&self, t: u32) -> bool {
        self.fill_z > t * self.hit_z
    }

    fn tex_below(&self, e: usize, t: u32) -> bool {
        self.fill_tex[e] > t * self.hit_tex[e]
    }
}

// --- GSPZTC ----------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct ZtcWay {
    rt: bool,
    rrpv: u8,
}

#[derive(Debug, Clone)]
struct OracleGspztc {
    t: u32,
    banks: Vec<Counts>,
    sets: PerSet<ZtcWay>,
}

impl OracleGspztc {
    fn new(cfg: &LlcConfig, t: u32) -> Self {
        OracleGspztc { t, banks: vec![Counts::default(); cfg.banks], sets: PerSet::new() }
    }
}

impl Policy for OracleGspztc {
    fn name(&self) -> &str {
        "oracle:GSPZTC"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        let was_rt = self.sets.set(a, set.len())[way].rt;
        if a.is_sample {
            let c = &mut self.banks[a.bank];
            match a.class {
                PolicyClass::Z => bump(&mut c.hit_z),
                PolicyClass::Tex => {
                    if was_rt {
                        bump(&mut c.fill_tex[0]);
                    } else {
                        bump(&mut c.hit_tex[0]);
                    }
                }
                _ => {}
            }
            c.tick();
        }
        let w = &mut self.sets.set(a, set.len())[way];
        match a.class {
            PolicyClass::Rt => w.rt = true,
            PolicyClass::Tex if was_rt => w.rt = false,
            _ => {}
        }
        w.rrpv = 0;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let ways = self.sets.set(a, set.len());
        let mut rr: Vec<u8> = ways.iter().map(|w| w.rrpv).collect();
        let v = rrip_victim(&mut rr, 3);
        for (w, r) in ways.iter_mut().zip(rr) {
            w.rrpv = r;
        }
        v
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        let rrpv = if a.is_sample {
            let c = &mut self.banks[a.bank];
            match a.class {
                PolicyClass::Z => bump(&mut c.fill_z),
                PolicyClass::Tex => bump(&mut c.fill_tex[0]),
                _ => {}
            }
            c.tick();
            2
        } else {
            let c = &self.banks[a.bank];
            match a.class {
                PolicyClass::Z => {
                    if c.z_below(self.t) {
                        3
                    } else {
                        2
                    }
                }
                PolicyClass::Tex => {
                    if c.tex_below(0, self.t) {
                        3
                    } else {
                        0
                    }
                }
                PolicyClass::Rt => 0,
                PolicyClass::Other => 2,
            }
        };
        self.sets.set(a, set.len())[way] = ZtcWay { rt: a.class == PolicyClass::Rt, rrpv };
        FillInfo::rrip(rrpv, 3)
    }
}

// --- GSPZTC+TSE / GSPC / GSPC+BYP ------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Epoch {
    Rt,
    E0,
    E1,
    #[default]
    E2,
}

#[derive(Debug, Clone, Default)]
struct TseWay {
    state: Epoch,
    rrpv: u8,
}

#[derive(Debug, Clone)]
struct OracleTse {
    t: u32,
    dynamic_rt: bool,
    bypass_dead_tex: bool,
    banks: Vec<Counts>,
    sets: PerSet<TseWay>,
}

impl OracleTse {
    fn new(cfg: &LlcConfig, t: u32, dynamic_rt: bool, bypass_dead_tex: bool) -> Self {
        OracleTse {
            t,
            dynamic_rt,
            bypass_dead_tex,
            banks: vec![Counts::default(); cfg.banks],
            sets: PerSet::new(),
        }
    }
}

impl Policy for OracleTse {
    fn name(&self) -> &str {
        "oracle:TSE"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn should_bypass(&mut self, a: &AccessInfo) -> bool {
        self.bypass_dead_tex
            && !a.is_sample
            && !a.write
            && a.class == PolicyClass::Tex
            && self.banks[a.bank].tex_below(0, self.t)
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        let st = self.sets.set(a, set.len())[way].state;
        let rrpv = if a.is_sample {
            let c = &mut self.banks[a.bank];
            match a.class {
                PolicyClass::Z => bump(&mut c.hit_z),
                PolicyClass::Tex => match st {
                    Epoch::Rt => {
                        bump(&mut c.fill_tex[0]);
                        if self.dynamic_rt {
                            bump(&mut c.cons);
                        }
                    }
                    Epoch::E0 => {
                        bump(&mut c.hit_tex[0]);
                        bump(&mut c.fill_tex[1]);
                    }
                    Epoch::E1 => bump(&mut c.hit_tex[1]),
                    Epoch::E2 => {}
                },
                _ => {}
            }
            c.tick();
            0
        } else {
            let c = &self.banks[a.bank];
            match a.class {
                PolicyClass::Tex => match st {
                    Epoch::Rt => {
                        if c.tex_below(0, self.t) {
                            3
                        } else {
                            0
                        }
                    }
                    Epoch::E0 => {
                        if c.tex_below(1, self.t) {
                            3
                        } else {
                            0
                        }
                    }
                    Epoch::E1 | Epoch::E2 => 0,
                },
                _ => 0,
            }
        };
        let w = &mut self.sets.set(a, set.len())[way];
        w.state = match a.class {
            PolicyClass::Rt => Epoch::Rt,
            PolicyClass::Tex => match w.state {
                Epoch::Rt => Epoch::E0,
                Epoch::E0 => Epoch::E1,
                Epoch::E1 | Epoch::E2 => Epoch::E2,
            },
            PolicyClass::Z | PolicyClass::Other => w.state,
        };
        w.rrpv = rrpv;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let ways = self.sets.set(a, set.len());
        let mut rr: Vec<u8> = ways.iter().map(|w| w.rrpv).collect();
        let v = rrip_victim(&mut rr, 3);
        for (w, r) in ways.iter_mut().zip(rr) {
            w.rrpv = r;
        }
        v
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        let rrpv = if a.is_sample {
            let c = &mut self.banks[a.bank];
            match a.class {
                PolicyClass::Z => bump(&mut c.fill_z),
                PolicyClass::Tex => bump(&mut c.fill_tex[0]),
                PolicyClass::Rt if self.dynamic_rt => bump(&mut c.prod),
                _ => {}
            }
            c.tick();
            2
        } else {
            let c = &self.banks[a.bank];
            match a.class {
                PolicyClass::Z => {
                    if c.z_below(self.t) {
                        3
                    } else {
                        2
                    }
                }
                PolicyClass::Tex => {
                    if c.tex_below(0, self.t) {
                        3
                    } else {
                        0
                    }
                }
                PolicyClass::Rt => {
                    if self.dynamic_rt {
                        if c.prod > 16 * c.cons {
                            3
                        } else if c.prod > 8 * c.cons {
                            2
                        } else {
                            0
                        }
                    } else {
                        0
                    }
                }
                PolicyClass::Other => 2,
            }
        };
        let state = match a.class {
            PolicyClass::Rt => Epoch::Rt,
            PolicyClass::Tex => Epoch::E0,
            _ => Epoch::E2,
        };
        self.sets.set(a, set.len())[way] = TseWay { state, rrpv };
        FillInfo::rrip(rrpv, 3)
    }
}

// --- UCD wrapper -----------------------------------------------------------

#[derive(Debug, Clone)]
struct OracleUcd<P> {
    inner: P,
}

impl<P: Policy> OracleUcd<P> {
    fn new(inner: P) -> Self {
        OracleUcd { inner }
    }
}

impl<P: Policy> Policy for OracleUcd<P> {
    fn name(&self) -> &str {
        "oracle:UCD"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn should_bypass(&mut self, a: &AccessInfo) -> bool {
        a.stream == StreamId::Display || self.inner.should_bypass(a)
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.inner.on_hit(a, set, way)
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        self.inner.choose_victim(a, set)
    }

    fn on_evict(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.inner.on_evict(a, set, way)
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        self.inner.on_fill(a, set, way)
    }
}

// --- NRU -------------------------------------------------------------------

#[derive(Debug, Clone)]
struct OracleNru {
    sets: PerSet<bool>,
}

impl OracleNru {
    fn new() -> Self {
        OracleNru { sets: PerSet::new() }
    }
}

impl Policy for OracleNru {
    fn name(&self) -> &str {
        "oracle:NRU"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.sets.set(a, set.len())[way] = true;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let bits = self.sets.set(a, set.len());
        if let Some(i) = bits.iter().position(|&b| !b) {
            return i;
        }
        for b in bits.iter_mut() {
            *b = false;
        }
        0
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        self.sets.set(a, set.len())[way] = true;
        FillInfo::default()
    }
}

// --- LRU -------------------------------------------------------------------

/// Timestamp LRU: a global tick stamps every touch; the victim is the way
/// with the smallest stamp. Ages in the production policy are a
/// permutation, so the minimum stamp and the maximum age always name the
/// same way.
#[derive(Debug, Clone)]
struct OracleLru {
    tick: u64,
    sets: PerSet<u64>,
}

impl OracleLru {
    fn new() -> Self {
        OracleLru { tick: 1, sets: PerSet::new() }
    }

    fn touch(&mut self, a: &AccessInfo, ways: usize, way: usize) {
        let t = self.tick;
        self.tick += 1;
        self.sets.set(a, ways)[way] = t;
    }
}

impl Policy for OracleLru {
    fn name(&self) -> &str {
        "oracle:LRU"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.touch(a, set.len(), way);
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let stamps = self.sets.set(a, set.len());
        let (victim, _) = stamps.iter().enumerate().min_by_key(|&(_, s)| s).expect("empty set");
        victim
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        self.touch(a, set.len(), way);
        FillInfo::default()
    }
}

// --- OPT -------------------------------------------------------------------

/// Belady oracle with its own next-use side table. The production LLC
/// resolves ties by taking the *last* way at the maximum, so this scan
/// uses `>=`.
#[derive(Debug, Clone)]
struct OracleOpt {
    sets: PerSet<u64>,
}

impl OracleOpt {
    fn new() -> Self {
        OracleOpt { sets: PerSet::new() }
    }
}

impl Policy for OracleOpt {
    fn name(&self) -> &str {
        "oracle:OPT"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.sets.set(a, set.len())[way] = a.next_use;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let nexts = self.sets.set(a, set.len());
        let mut victim = 0;
        let mut far = 0u64;
        for (i, &n) in nexts.iter().enumerate() {
            if n >= far {
                far = n;
                victim = i;
            }
        }
        victim
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        self.sets.set(a, set.len())[way] = a.next_use;
        FillInfo::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gspc::registry;

    #[test]
    fn oracles_exist_for_the_paper_policies() {
        let cfg = LlcConfig::mb(8);
        for name in [
            "NRU",
            "LRU",
            "SRRIP",
            "DRRIP",
            "DRRIP-4",
            "SHiP-mem",
            "GSPZTC",
            "GSPZTC(t=2)",
            "GSPZTC+TSE",
            "GSPC",
            "GSPC+BYP",
            "GSPC+UCD",
            "DRRIP+UCD",
            "NRU+UCD",
            "OPT",
        ] {
            assert!(oracle_for(name, &cfg).is_some(), "no oracle for {name}");
            assert!(registry::create(name, &cfg).is_some(), "oracle without registry entry {name}");
        }
        assert!(oracle_for("PLRU", &cfg).is_none());
        assert!(oracle_for("GSPZTC(t=3)", &cfg).is_none(), "non-power-of-two threshold");
    }

    #[test]
    fn rrip_victim_matches_closed_form() {
        // First way at the maximum wins, and everyone ages by the gap.
        let mut rr = vec![1u8, 2, 0, 2];
        assert_eq!(rrip_victim(&mut rr, 3), 1);
        assert_eq!(rr, vec![2, 3, 1, 3]);
        // Already at distant: no aging.
        let mut rr = vec![3u8, 0];
        assert_eq!(rrip_victim(&mut rr, 3), 0);
        assert_eq!(rr, vec![3, 0]);
    }

    #[test]
    fn counts_halve_on_acc_saturation() {
        let mut c = Counts::default();
        for _ in 0..10 {
            bump(&mut c.fill_z);
            bump(&mut c.prod);
        }
        for _ in 0..127 {
            c.tick();
        }
        assert_eq!(c.fill_z, 5);
        assert_eq!(c.prod, 5);
        assert_eq!(c.acc, 0);
    }
}
