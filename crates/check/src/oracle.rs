//! Reference oracles: independent reimplementations of the registry
//! policies.
//!
//! Each oracle here is written in the most obvious style available — side
//! tables keyed by `(bank, set)`, plain `bool`/`u8`/`u64` per-way state,
//! the textbook scan-and-age RRIP victim loop — and deliberately never
//! touches [`Block::meta`]. A production policy that packs its state into
//! the metadata word incorrectly therefore diverges from its oracle on the
//! first decision the corruption influences.
//!
//! [`oracle_for`] resolves any accepted policy spelling through the
//! registry ([`gspc::registry::resolve`]) and dispatches on the row's
//! [`OracleRef`] key, so the oracle vocabulary can never drift from the
//! registry's: policies that opt out (the auxiliary baselines, with a
//! documented reason in their metadata) still get differential coverage
//! through the registry-clone replay in [`crate::fuzz`].

use std::collections::HashMap;

use grcache::{AccessInfo, Block, FillInfo, LlcConfig, Policy};
use grtrace::{PolicyClass, StreamId};
use gspc::registry::{self, OracleRef};
use gspc::DEFAULT_T;

/// Builds the independent oracle for a registry policy name, or `None`
/// when the policy has no oracle (it is then verified against a registry
/// clone only). Accepts every spelling the registry accepts — aliases and
/// parameterized `GSPZTC(t=N)` forms resolve to their governing row.
pub fn oracle_for(name: &str, cfg: &LlcConfig) -> Option<Box<dyn Policy>> {
    let resolved = registry::resolve(name)?;
    let key = match resolved.entry().meta.oracle {
        OracleRef::Key(key) => key,
        OracleRef::OptOut(_) => return None,
    };
    let t = resolved.threshold().unwrap_or(DEFAULT_T);
    build_oracle(key, cfg, t)
}

/// The oracle constructor table, keyed by [`OracleRef::Key`]. Adding a
/// policy with an independent oracle means one registry row plus one arm
/// here; the coverage test proves every registered key builds.
fn build_oracle(key: &str, cfg: &LlcConfig, t: u32) -> Option<Box<dyn Policy>> {
    Some(match key {
        "nru" => Box::new(OracleNru::new()),
        "lru" => Box::new(OracleLru::new()),
        "srrip-2" => Box::new(OracleSrrip::new(2)),
        "drrip-2" => Box::new(OracleDrrip::new(2)),
        "drrip-4" => Box::new(OracleDrrip::new(4)),
        "ship" => Box::new(OracleShip::new(cfg)),
        "gspztc" => Box::new(OracleGspztc::new(cfg, t)),
        "tse" => Box::new(OracleTse::new(cfg, t, false, false)),
        "gspc" => Box::new(OracleTse::new(cfg, t, true, false)),
        "gspc+byp" => Box::new(OracleTse::new(cfg, t, true, true)),
        "gspc+ucd" => Box::new(OracleUcd::new(OracleTse::new(cfg, t, true, false))),
        "drrip+ucd" => Box::new(OracleUcd::new(OracleDrrip::new(2))),
        "nru+ucd" => Box::new(OracleUcd::new(OracleNru::new())),
        "opt" => Box::new(OracleOpt::new()),
        "gopt" => Box::new(OracleGopt::new(cfg)),
        _ => return None,
    })
}

/// Lazily allocated per-way side state, keyed by `(bank, set_in_bank)`.
#[derive(Debug, Clone)]
struct PerSet<W> {
    map: HashMap<(usize, usize), Vec<W>>,
}

impl<W: Clone + Default> PerSet<W> {
    fn new() -> Self {
        PerSet { map: HashMap::new() }
    }

    fn set(&mut self, a: &AccessInfo, ways: usize) -> &mut Vec<W> {
        self.map.entry((a.bank, a.set_in_bank)).or_insert_with(|| vec![W::default(); ways])
    }
}

/// The textbook RRIP victim loop: scan for a block at the distant RRPV,
/// aging every block by one until one appears, and take the first such way.
fn rrip_victim(rrpvs: &mut [u8], distant: u8) -> usize {
    loop {
        if let Some(i) = rrpvs.iter().position(|&r| r == distant) {
            return i;
        }
        for r in rrpvs.iter_mut() {
            *r += 1;
        }
    }
}

// --- SRRIP -----------------------------------------------------------------

#[derive(Debug, Clone)]
struct OracleSrrip {
    distant: u8,
    sets: PerSet<u8>,
}

impl OracleSrrip {
    fn new(bits: u32) -> Self {
        OracleSrrip { distant: ((1u32 << bits) - 1) as u8, sets: PerSet::new() }
    }
}

impl Policy for OracleSrrip {
    fn name(&self) -> &str {
        "oracle:SRRIP"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.sets.set(a, set.len())[way] = 0;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let distant = self.distant;
        rrip_victim(self.sets.set(a, set.len()), distant)
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        let rrpv = self.distant - 1;
        self.sets.set(a, set.len())[way] = rrpv;
        FillInfo::rrip(rrpv, self.distant)
    }
}

// --- DRRIP -----------------------------------------------------------------

#[derive(Debug, Clone)]
struct OracleDrrip {
    distant: u8,
    psel: u32,
    brrip_fills: u64,
    sets: PerSet<u8>,
}

/// DRRIP duel constants, spelled out: 10-bit PSEL, leaders at set residues
/// 1 (SRRIP) and 2 (BRRIP) modulo 64.
const PSEL_MAX: u32 = 1023;

impl OracleDrrip {
    fn new(bits: u32) -> Self {
        OracleDrrip {
            distant: ((1u32 << bits) - 1) as u8,
            psel: PSEL_MAX / 2,
            brrip_fills: 0,
            sets: PerSet::new(),
        }
    }
}

impl Policy for OracleDrrip {
    fn name(&self) -> &str {
        "oracle:DRRIP"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.sets.set(a, set.len())[way] = 0;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let distant = self.distant;
        rrip_victim(self.sets.set(a, set.len()), distant)
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        // The duel observes the miss before the insertion decision.
        match a.set_in_bank % 64 {
            1 if self.psel < PSEL_MAX => self.psel += 1,
            2 => self.psel = self.psel.saturating_sub(1),
            _ => {}
        }
        let use_brrip = match a.set_in_bank % 64 {
            1 => false,
            2 => true,
            _ => self.psel > PSEL_MAX / 2,
        };
        let rrpv = if use_brrip {
            self.brrip_fills += 1;
            if self.brrip_fills.is_multiple_of(32) {
                self.distant - 1
            } else {
                self.distant
            }
        } else {
            self.distant - 1
        };
        self.sets.set(a, set.len())[way] = rrpv;
        FillInfo::rrip(rrpv, self.distant)
    }
}

// --- SHiP-mem --------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct ShipWay {
    sig: u32,
    reused: bool,
    rrpv: u8,
}

#[derive(Debug, Clone)]
struct OracleShip {
    tables: Vec<HashMap<u32, u8>>,
    sets: PerSet<ShipWay>,
}

impl OracleShip {
    fn new(cfg: &LlcConfig) -> Self {
        OracleShip { tables: vec![HashMap::new(); cfg.banks], sets: PerSet::new() }
    }

    /// 14-bit region signature: block address bits [21:8].
    fn signature(block: u64) -> u32 {
        ((block >> 8) as u32) & ((1 << 14) - 1)
    }
}

impl Policy for OracleShip {
    fn name(&self) -> &str {
        "oracle:SHiP-mem"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        let w = &mut self.sets.set(a, set.len())[way];
        w.reused = true;
        w.rrpv = 0;
        let sig = w.sig;
        let c = self.tables[a.bank].entry(sig).or_insert(1);
        *c = (*c + 1).min(7);
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let ways = self.sets.set(a, set.len());
        let mut rr: Vec<u8> = ways.iter().map(|w| w.rrpv).collect();
        let v = rrip_victim(&mut rr, 3);
        for (w, r) in ways.iter_mut().zip(rr) {
            w.rrpv = r;
        }
        v
    }

    fn on_evict(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        let w = self.sets.set(a, set.len())[way].clone();
        if !w.reused {
            let c = self.tables[a.bank].entry(w.sig).or_insert(1);
            *c = c.saturating_sub(1);
        }
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        let sig = Self::signature(a.block);
        let dead = self.tables[a.bank].get(&sig).copied().unwrap_or(1) == 0;
        let rrpv = if dead { 3 } else { 2 };
        self.sets.set(a, set.len())[way] = ShipWay { sig, reused: false, rrpv };
        FillInfo::rrip(rrpv, 3)
    }
}

// --- Saturating counter file (shared by GSPZTC and TSE oracles) ------------

/// The GSPC per-bank counter file in plain integers: eight values
/// saturating at 255 and a 7-bit access counter whose saturation halves
/// everything.
#[derive(Debug, Clone, Default)]
struct Counts {
    fill_z: u32,
    hit_z: u32,
    fill_tex: [u32; 2],
    hit_tex: [u32; 2],
    prod: u32,
    cons: u32,
    acc: u32,
}

fn bump(v: &mut u32) {
    if *v < 255 {
        *v += 1;
    }
}

impl Counts {
    fn tick(&mut self) {
        self.acc += 1;
        if self.acc == 127 {
            self.fill_z /= 2;
            self.hit_z /= 2;
            for v in &mut self.fill_tex {
                *v /= 2;
            }
            for v in &mut self.hit_tex {
                *v /= 2;
            }
            self.prod /= 2;
            self.cons /= 2;
            self.acc = 0;
        }
    }

    fn z_below(&self, t: u32) -> bool {
        self.fill_z > t * self.hit_z
    }

    fn tex_below(&self, e: usize, t: u32) -> bool {
        self.fill_tex[e] > t * self.hit_tex[e]
    }
}

// --- GSPZTC ----------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct ZtcWay {
    rt: bool,
    rrpv: u8,
}

#[derive(Debug, Clone)]
struct OracleGspztc {
    t: u32,
    banks: Vec<Counts>,
    sets: PerSet<ZtcWay>,
}

impl OracleGspztc {
    fn new(cfg: &LlcConfig, t: u32) -> Self {
        OracleGspztc { t, banks: vec![Counts::default(); cfg.banks], sets: PerSet::new() }
    }
}

impl Policy for OracleGspztc {
    fn name(&self) -> &str {
        "oracle:GSPZTC"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        let was_rt = self.sets.set(a, set.len())[way].rt;
        if a.is_sample {
            let c = &mut self.banks[a.bank];
            match a.class {
                PolicyClass::Z => bump(&mut c.hit_z),
                PolicyClass::Tex => {
                    if was_rt {
                        bump(&mut c.fill_tex[0]);
                    } else {
                        bump(&mut c.hit_tex[0]);
                    }
                }
                _ => {}
            }
            c.tick();
        }
        let w = &mut self.sets.set(a, set.len())[way];
        match a.class {
            PolicyClass::Rt => w.rt = true,
            PolicyClass::Tex if was_rt => w.rt = false,
            _ => {}
        }
        w.rrpv = 0;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let ways = self.sets.set(a, set.len());
        let mut rr: Vec<u8> = ways.iter().map(|w| w.rrpv).collect();
        let v = rrip_victim(&mut rr, 3);
        for (w, r) in ways.iter_mut().zip(rr) {
            w.rrpv = r;
        }
        v
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        let rrpv = if a.is_sample {
            let c = &mut self.banks[a.bank];
            match a.class {
                PolicyClass::Z => bump(&mut c.fill_z),
                PolicyClass::Tex => bump(&mut c.fill_tex[0]),
                _ => {}
            }
            c.tick();
            2
        } else {
            let c = &self.banks[a.bank];
            match a.class {
                PolicyClass::Z => {
                    if c.z_below(self.t) {
                        3
                    } else {
                        2
                    }
                }
                PolicyClass::Tex => {
                    if c.tex_below(0, self.t) {
                        3
                    } else {
                        0
                    }
                }
                PolicyClass::Rt => 0,
                PolicyClass::Other => 2,
            }
        };
        self.sets.set(a, set.len())[way] = ZtcWay { rt: a.class == PolicyClass::Rt, rrpv };
        FillInfo::rrip(rrpv, 3)
    }
}

// --- GSPZTC+TSE / GSPC / GSPC+BYP ------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Epoch {
    Rt,
    E0,
    E1,
    #[default]
    E2,
}

#[derive(Debug, Clone, Default)]
struct TseWay {
    state: Epoch,
    rrpv: u8,
}

#[derive(Debug, Clone)]
struct OracleTse {
    t: u32,
    dynamic_rt: bool,
    bypass_dead_tex: bool,
    banks: Vec<Counts>,
    sets: PerSet<TseWay>,
}

impl OracleTse {
    fn new(cfg: &LlcConfig, t: u32, dynamic_rt: bool, bypass_dead_tex: bool) -> Self {
        OracleTse {
            t,
            dynamic_rt,
            bypass_dead_tex,
            banks: vec![Counts::default(); cfg.banks],
            sets: PerSet::new(),
        }
    }
}

impl Policy for OracleTse {
    fn name(&self) -> &str {
        "oracle:TSE"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn should_bypass(&mut self, a: &AccessInfo) -> bool {
        self.bypass_dead_tex
            && !a.is_sample
            && !a.write
            && a.class == PolicyClass::Tex
            && self.banks[a.bank].tex_below(0, self.t)
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        let st = self.sets.set(a, set.len())[way].state;
        let rrpv = if a.is_sample {
            let c = &mut self.banks[a.bank];
            match a.class {
                PolicyClass::Z => bump(&mut c.hit_z),
                PolicyClass::Tex => match st {
                    Epoch::Rt => {
                        bump(&mut c.fill_tex[0]);
                        if self.dynamic_rt {
                            bump(&mut c.cons);
                        }
                    }
                    Epoch::E0 => {
                        bump(&mut c.hit_tex[0]);
                        bump(&mut c.fill_tex[1]);
                    }
                    Epoch::E1 => bump(&mut c.hit_tex[1]),
                    Epoch::E2 => {}
                },
                _ => {}
            }
            c.tick();
            0
        } else {
            let c = &self.banks[a.bank];
            match a.class {
                PolicyClass::Tex => match st {
                    Epoch::Rt => {
                        if c.tex_below(0, self.t) {
                            3
                        } else {
                            0
                        }
                    }
                    Epoch::E0 => {
                        if c.tex_below(1, self.t) {
                            3
                        } else {
                            0
                        }
                    }
                    Epoch::E1 | Epoch::E2 => 0,
                },
                _ => 0,
            }
        };
        let w = &mut self.sets.set(a, set.len())[way];
        w.state = match a.class {
            PolicyClass::Rt => Epoch::Rt,
            PolicyClass::Tex => match w.state {
                Epoch::Rt => Epoch::E0,
                Epoch::E0 => Epoch::E1,
                Epoch::E1 | Epoch::E2 => Epoch::E2,
            },
            PolicyClass::Z | PolicyClass::Other => w.state,
        };
        w.rrpv = rrpv;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let ways = self.sets.set(a, set.len());
        let mut rr: Vec<u8> = ways.iter().map(|w| w.rrpv).collect();
        let v = rrip_victim(&mut rr, 3);
        for (w, r) in ways.iter_mut().zip(rr) {
            w.rrpv = r;
        }
        v
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        let rrpv = if a.is_sample {
            let c = &mut self.banks[a.bank];
            match a.class {
                PolicyClass::Z => bump(&mut c.fill_z),
                PolicyClass::Tex => bump(&mut c.fill_tex[0]),
                PolicyClass::Rt if self.dynamic_rt => bump(&mut c.prod),
                _ => {}
            }
            c.tick();
            2
        } else {
            let c = &self.banks[a.bank];
            match a.class {
                PolicyClass::Z => {
                    if c.z_below(self.t) {
                        3
                    } else {
                        2
                    }
                }
                PolicyClass::Tex => {
                    if c.tex_below(0, self.t) {
                        3
                    } else {
                        0
                    }
                }
                PolicyClass::Rt => {
                    if self.dynamic_rt {
                        if c.prod > 16 * c.cons {
                            3
                        } else if c.prod > 8 * c.cons {
                            2
                        } else {
                            0
                        }
                    } else {
                        0
                    }
                }
                PolicyClass::Other => 2,
            }
        };
        let state = match a.class {
            PolicyClass::Rt => Epoch::Rt,
            PolicyClass::Tex => Epoch::E0,
            _ => Epoch::E2,
        };
        self.sets.set(a, set.len())[way] = TseWay { state, rrpv };
        FillInfo::rrip(rrpv, 3)
    }
}

// --- UCD wrapper -----------------------------------------------------------

#[derive(Debug, Clone)]
struct OracleUcd<P> {
    inner: P,
}

impl<P: Policy> OracleUcd<P> {
    fn new(inner: P) -> Self {
        OracleUcd { inner }
    }
}

impl<P: Policy> Policy for OracleUcd<P> {
    fn name(&self) -> &str {
        "oracle:UCD"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn should_bypass(&mut self, a: &AccessInfo) -> bool {
        a.stream == StreamId::Display || self.inner.should_bypass(a)
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.inner.on_hit(a, set, way)
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        self.inner.choose_victim(a, set)
    }

    fn on_evict(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.inner.on_evict(a, set, way)
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        self.inner.on_fill(a, set, way)
    }
}

// --- NRU -------------------------------------------------------------------

#[derive(Debug, Clone)]
struct OracleNru {
    sets: PerSet<bool>,
}

impl OracleNru {
    fn new() -> Self {
        OracleNru { sets: PerSet::new() }
    }
}

impl Policy for OracleNru {
    fn name(&self) -> &str {
        "oracle:NRU"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.sets.set(a, set.len())[way] = true;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let bits = self.sets.set(a, set.len());
        if let Some(i) = bits.iter().position(|&b| !b) {
            return i;
        }
        for b in bits.iter_mut() {
            *b = false;
        }
        0
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        self.sets.set(a, set.len())[way] = true;
        FillInfo::default()
    }
}

// --- LRU -------------------------------------------------------------------

/// Timestamp LRU: a global tick stamps every touch; the victim is the way
/// with the smallest stamp. Ages in the production policy are a
/// permutation, so the minimum stamp and the maximum age always name the
/// same way.
#[derive(Debug, Clone)]
struct OracleLru {
    tick: u64,
    sets: PerSet<u64>,
}

impl OracleLru {
    fn new() -> Self {
        OracleLru { tick: 1, sets: PerSet::new() }
    }

    fn touch(&mut self, a: &AccessInfo, ways: usize, way: usize) {
        let t = self.tick;
        self.tick += 1;
        self.sets.set(a, ways)[way] = t;
    }
}

impl Policy for OracleLru {
    fn name(&self) -> &str {
        "oracle:LRU"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.touch(a, set.len(), way);
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let stamps = self.sets.set(a, set.len());
        let (victim, _) = stamps.iter().enumerate().min_by_key(|&(_, s)| s).expect("empty set");
        victim
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        self.touch(a, set.len(), way);
        FillInfo::default()
    }
}

// --- OPT -------------------------------------------------------------------

/// Belady oracle with its own next-use side table. The production LLC
/// resolves ties by taking the *last* way at the maximum, so this scan
/// uses `>=`.
#[derive(Debug, Clone)]
struct OracleOpt {
    sets: PerSet<u64>,
}

impl OracleOpt {
    fn new() -> Self {
        OracleOpt { sets: PerSet::new() }
    }
}

impl Policy for OracleOpt {
    fn name(&self) -> &str {
        "oracle:OPT"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.sets.set(a, set.len())[way] = a.next_use;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        let nexts = self.sets.set(a, set.len());
        let mut victim = 0;
        let mut far = 0u64;
        for (i, &n) in nexts.iter().enumerate() {
            if n >= far {
                far = n;
                victim = i;
            }
        }
        victim
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        self.sets.set(a, set.len())[way] = a.next_use;
        FillInfo::default()
    }
}

// --- GOPT ------------------------------------------------------------------

/// OPT-trained region predictor, reimplemented in the oracle style: the
/// shadow Belady sets live in a `HashMap` of `(block, next_use)` pairs and
/// the per-bank region evidence in `HashMap<signature, (friendly, averse)>`
/// — plain tallies, matching the production policy's unsaturated,
/// undecayed counters decision for decision. Training happens on every
/// hit and fill *before* the insertion classification, mirroring the
/// production ordering; a shadow miss whose incoming line out-distances
/// every shadow resident (the OPT bypass case) counts as doubly averse.
#[derive(Debug, Clone)]
struct OracleGopt {
    shadow: HashMap<(usize, usize), Vec<(u64, u64)>>,
    tables: Vec<HashMap<u32, (u64, u64)>>,
    rrpvs: PerSet<u8>,
}

impl OracleGopt {
    fn new(cfg: &LlcConfig) -> Self {
        OracleGopt {
            shadow: HashMap::new(),
            tables: vec![HashMap::new(); cfg.banks],
            rrpvs: PerSet::new(),
        }
    }

    /// 14-bit region signature: block address bits [21:8] (the SHiP-mem
    /// geometry).
    fn signature(block: u64) -> u32 {
        ((block >> 8) as u32) & ((1 << 14) - 1)
    }

    /// Replays `a` through the shadow Belady set and banks the outcome.
    fn observe(&mut self, a: &AccessInfo, ways: usize) {
        let set = self.shadow.entry((a.bank, a.set_in_bank)).or_default();
        let averse;
        if let Some(w) = set.iter_mut().find(|w| w.0 == a.block) {
            w.1 = a.next_use;
            averse = 0;
        } else if set.len() < ways {
            set.push((a.block, a.next_use));
            averse = 1;
        } else {
            // Victim = farthest next use, last way on ties (the production
            // Belady tie-break); an incoming line at least as far as every
            // resident is OPT's bypass decision and trains twice.
            let mut victim = 0;
            let mut far = 0u64;
            for (i, w) in set.iter().enumerate() {
                if w.1 >= far {
                    far = w.1;
                    victim = i;
                }
            }
            averse = if a.next_use >= far { 2 } else { 1 };
            set[victim] = (a.block, a.next_use);
        }
        let e = self.tables[a.bank].entry(Self::signature(a.block)).or_insert((0, 0));
        if averse == 0 {
            e.0 += 1;
        } else {
            e.1 += averse;
        }
    }
}

impl Policy for OracleGopt {
    fn name(&self) -> &str {
        "oracle:GOPT"
    }

    fn state_bits_per_block(&self) -> u32 {
        0
    }

    fn on_hit(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) {
        self.observe(a, set.len());
        self.rrpvs.set(a, set.len())[way] = 0;
    }

    fn choose_victim(&mut self, a: &AccessInfo, set: &mut [Block]) -> usize {
        rrip_victim(self.rrpvs.set(a, set.len()), 3)
    }

    fn on_fill(&mut self, a: &AccessInfo, set: &mut [Block], way: usize) -> FillInfo {
        self.observe(a, set.len());
        let (friendly, averse) =
            self.tables[a.bank].get(&Self::signature(a.block)).copied().unwrap_or((0, 0));
        let rrpv = if friendly > 3 * averse && friendly > 0 {
            0
        } else if averse > 3 * friendly && averse > 0 {
            3
        } else {
            2
        };
        self.rrpvs.set(a, set.len())[way] = rrpv;
        FillInfo::rrip(rrpv, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gspc::registry;

    /// Cross-layer oracle coverage, driven by the registry itself: every
    /// `ALL_POLICIES` row either names an oracle key that actually builds
    /// one here, or carries a documented opt-out — so a future row that
    /// forgets its verification story (or typos its key) fails this build,
    /// not a fuzz campaign months later.
    #[test]
    fn every_registry_row_resolves_its_oracle_story() {
        let cfg = LlcConfig::mb(8);
        let mut with_oracle = 0;
        for entry in registry::ALL_POLICIES {
            match entry.meta.oracle {
                OracleRef::Key(key) => {
                    with_oracle += 1;
                    assert!(
                        build_oracle(key, &cfg, DEFAULT_T).is_some(),
                        "{}: oracle key {key:?} has no constructor arm",
                        entry.name
                    );
                    assert!(oracle_for(entry.name, &cfg).is_some(), "no oracle for {}", entry.name);
                    for alias in entry.aliases {
                        assert!(oracle_for(alias, &cfg).is_some(), "no oracle via alias {alias}");
                    }
                }
                OracleRef::OptOut(reason) => {
                    assert!(!reason.is_empty(), "{}: undocumented opt-out", entry.name);
                    assert!(
                        oracle_for(entry.name, &cfg).is_none(),
                        "{}: opted out but an oracle was built",
                        entry.name
                    );
                }
            }
        }
        assert!(with_oracle >= 15, "oracle coverage shrank to {with_oracle} policies");
        // Parameterized spellings dispatch through their base row; unknown
        // and malformed names build nothing.
        for name in registry::PARAMETERIZED.iter().flat_map(|f| f.fuzz_spellings) {
            assert!(oracle_for(name, &cfg).is_some(), "no oracle for {name}");
        }
        assert!(oracle_for("PLRU", &cfg).is_none());
        assert!(oracle_for("GSPZTC(t=3)", &cfg).is_none(), "non-power-of-two threshold");
    }

    #[test]
    fn rrip_victim_matches_closed_form() {
        // First way at the maximum wins, and everyone ages by the gap.
        let mut rr = vec![1u8, 2, 0, 2];
        assert_eq!(rrip_victim(&mut rr, 3), 1);
        assert_eq!(rr, vec![2, 3, 1, 3]);
        // Already at distant: no aging.
        let mut rr = vec![3u8, 0];
        assert_eq!(rrip_victim(&mut rr, 3), 0);
        assert_eq!(rr, vec![3, 0]);
    }

    #[test]
    fn counts_halve_on_acc_saturation() {
        let mut c = Counts::default();
        for _ in 0..10 {
            bump(&mut c.fill_z);
            bump(&mut c.prod);
        }
        for _ in 0..127 {
            c.tick();
        }
        assert_eq!(c.fill_z, 5);
        assert_eq!(c.prod, 5);
        assert_eq!(c.acc, 0);
    }
}
