//! Deterministic trace fuzzing with divergence shrinking.
//!
//! A fuzz case is a seeded synthetic access stream — randomized stream
//! mix, surface footprints, address locality, and epoch churn — replayed
//! simultaneously through the production [`Llc`] and the naive
//! [`RefLlc`](crate::refmodel::RefLlc), once driving a registry clone of
//! the policy under test and once driving its independent oracle
//! ([`crate::oracle`]). The first disagreement (per-access result or final
//! statistics) is a [`Divergence`]; [`shrink`] then reduces the trace to a
//! minimal reproducer suitable for a `.gtrace` artifact.

use std::io;
use std::path::{Path, PathBuf};

use grcache::{Llc, LlcConfig, LlcStats};
use grsynth::rng::{zipf_rank, FrameRng};
use grtrace::{Access, StreamId, Trace, BLOCK_SHIFT};
use gspc::registry;

use crate::optcheck::{next_uses, opt_misses};
use crate::oracle::oracle_for;
use crate::refmodel::RefLlc;

/// Fault injected into the fast path during a differential replay — the
/// harness self-test that proves the fuzzer can catch a real bug class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the replays must agree.
    None,
    /// After the first access is serviced, flip one bit of the fast path's
    /// packed tag mirror for that block (a mirror desync, invisible to
    /// structural invariants because the naive model holds the truth).
    MirrorDesyncAfterFirst,
}

/// A disagreement between the fast path and a reference replay.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the diverging access (`trace.len()` for a final-statistics
    /// mismatch).
    pub index: usize,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

/// The default fuzz-case geometry: small enough that a few thousand
/// accesses force evictions in every set, 16-way so the production probe
/// takes its unrolled path.
pub fn fuzz_llc() -> LlcConfig {
    LlcConfig { size_bytes: 64 * 1024, ways: 16, banks: 4, sample_period: 16 }
}

/// An alternate geometry exercising the non-16-way fallback probe path.
pub fn alt_llc() -> LlcConfig {
    LlcConfig { size_bytes: 32 * 1024, ways: 4, banks: 2, sample_period: 8 }
}

/// Synthesizes the access stream for one fuzz case. Deterministic in
/// `(seed, case, len)`: the same triple always yields the same trace.
///
/// Two generators share the case space: cases `≡ 2 (mod 3)` draw from a
/// built-in frame-graph profile ([`grsynth::GRAPH_PROFILES`]) at a sampled
/// coherence level, so the fuzzer exercises the renderer's real pass
/// structure; the rest use the synthetic multi-stream plan below.
pub fn synth_trace(seed: u64, case: u32, len: usize) -> Vec<Access> {
    struct Plan {
        stream: StreamId,
        weight: f64,
        write_prob: f64,
        base: u64,
        footprint: u64,
        cursor: u64,
    }

    let mut rng =
        FrameRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(case.into()));
    if case % 3 == 2 {
        return graph_trace(&mut rng, len);
    }
    let nstreams = 2 + (rng.next_u64() % 4) as usize;
    let mut plans: Vec<Plan> = (0..nstreams)
        .map(|i| {
            let stream = StreamId::ALL[(rng.next_u64() % StreamId::ALL.len() as u64) as usize];
            Plan {
                stream,
                weight: 0.2 + rng.next_f64(),
                write_prob: match stream {
                    StreamId::RenderTarget | StreamId::Display => 0.7,
                    StreamId::Z => 0.4,
                    _ => 0.05,
                },
                // Distinct address regions per plan so footprints never
                // collide until churn moves them.
                base: (i as u64 + 1) << 24,
                footprint: 1 << (4 + rng.next_u64() % 9),
                cursor: 0,
            }
        })
        .collect();
    let total: f64 = plans.iter().map(|p| p.weight).sum();
    let locality = 0.3 + 0.6 * rng.next_f64();
    let churn_period = 512 + (rng.next_u64() % 4096) as usize;

    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        if i > 0 && i % churn_period == 0 {
            // Epoch churn: one stream abandons its surface for a fresh one.
            let k = (rng.next_u64() as usize) % plans.len();
            plans[k].base += plans[k].footprint << 1;
        }
        let mut pick = rng.next_f64() * total;
        let mut idx = plans.len() - 1;
        for (j, p) in plans.iter().enumerate() {
            if pick < p.weight {
                idx = j;
                break;
            }
            pick -= p.weight;
        }
        let write = rng.gen_bool(plans[idx].write_prob);
        let jump = !rng.gen_bool(locality);
        let p = &mut plans[idx];
        p.cursor = if jump {
            zipf_rank(&mut rng, p.footprint as usize) as u64
        } else {
            (p.cursor + 1) % p.footprint
        };
        let addr = (p.base + p.cursor) << BLOCK_SHIFT;
        out.push(if write { Access::store(addr, p.stream) } else { Access::load(addr, p.stream) });
    }
    out
}

/// Draws one fuzz trace from a built-in frame-graph profile: the profile,
/// its coherence override, and the rendered frame all come off the case's
/// RNG stream, so profile-backed cases stay as deterministic as the
/// plan-backed ones. The tiny-scale render is cycled or truncated to honor
/// the `len` contract.
fn graph_trace(rng: &mut FrameRng, len: usize) -> Vec<Access> {
    let profiles = grsynth::GRAPH_PROFILES;
    let profile = &profiles[(rng.next_u64() % profiles.len() as u64) as usize];
    let coherence = [0.0, 0.25, 0.5, 0.75, 1.0][(rng.next_u64() % 5) as usize];
    let frame = (rng.next_u64() % 4) as u32;
    let graph = profile.graph_with_coherence(coherence);
    let trace = grsynth::GraphRenderer::new(&graph, frame, grsynth::Scale::Tiny).render();
    let rendered = trace.accesses();
    (0..len).map(|i| rendered[i % rendered.len()]).collect()
}

/// Replays `accesses` through the fast path, a [`RefLlc`] driving a fresh
/// registry clone, and (when one exists) a [`RefLlc`] driving the policy's
/// independent oracle, comparing the [`grcache::AccessResult`] of every
/// access and the final statistics. Returns the fast path's statistics on
/// agreement.
///
/// # Panics
///
/// Panics if `name` is not a registry policy name.
pub fn differential_replay(
    cfg: &LlcConfig,
    name: &str,
    accesses: &[Access],
    fault: Fault,
) -> Result<LlcStats, Divergence> {
    let nu = registry::needs_next_use(name).then(|| next_uses(accesses));
    let mut fast = Llc::new(*cfg, registry::create(name, cfg).expect("registry policy name"));
    let mut reference =
        RefLlc::new(*cfg, registry::create(name, cfg).expect("registry policy name"));
    let mut oracle = oracle_for(name, cfg).map(|p| RefLlc::new(*cfg, p));

    for (i, a) in accesses.iter().enumerate() {
        let n = nu.as_ref().map_or(u64::MAX, |v| v[i]);
        let f = fast.access_annotated(a, n);
        let r = reference.access(a, n);
        if f != r {
            return Err(Divergence {
                index: i,
                detail: format!("fast {f:?} vs reference {r:?} on {a:?}"),
            });
        }
        if let Some(orc) = oracle.as_mut() {
            let o = orc.access(a, n);
            if f != o {
                return Err(Divergence {
                    index: i,
                    detail: format!("fast {f:?} vs oracle {o:?} on {a:?}"),
                });
            }
        }
        if i == 0 && fault == Fault::MirrorDesyncAfterFirst {
            fast.corrupt_mirror_tag_for_test(a.block());
        }
    }

    reference
        .stats()
        .matches(fast.stats())
        .map_err(|e| Divergence { index: accesses.len(), detail: format!("stats: {e}") })?;
    if let Some(orc) = &oracle {
        orc.stats().matches(fast.stats()).map_err(|e| Divergence {
            index: accesses.len(),
            detail: format!("oracle stats: {e}"),
        })?;
    }
    Ok(fast.stats().clone())
}

/// Greedy ddmin: removes chunks of halving size while the divergence
/// persists, yielding a (locally) minimal reproducer. With
/// [`Fault::MirrorDesyncAfterFirst`] the first access is pinned — it is
/// the corruption target.
pub fn shrink(cfg: &LlcConfig, name: &str, accesses: &[Access], fault: Fault) -> Vec<Access> {
    let diverges = |acc: &[Access]| differential_replay(cfg, name, acc, fault).is_err();
    let mut cur = accesses.to_vec();
    if !diverges(&cur) {
        return cur;
    }
    let pinned = usize::from(fault == Fault::MirrorDesyncAfterFirst);
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut start = pinned;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if diverges(&candidate) {
                cur = candidate;
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    cur
}

/// Writes a shrunk reproducer as a `.gtrace` artifact; returns its path.
pub fn dump_reproducer(
    dir: &Path,
    policy: &str,
    seed: u64,
    case: u32,
    accesses: &[Access],
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let slug: String =
        policy.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    let path = dir.join(format!("{slug}_s{seed}_c{case}.gtrace"));
    let mut trace = Trace::new(format!("fuzz:{policy}"), case);
    for a in accesses {
        trace.push(*a);
    }
    grtrace::io::write(std::fs::File::create(&path)?, &trace)?;
    Ok(path)
}

/// A fuzz campaign: `cases` seeded traces, each replayed differentially
/// under every policy in `policies`, with the independent Belady bound
/// checked for every bypass-free run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed; two campaigns with equal seeds fuzz equal traces.
    pub seed: u64,
    /// Number of generated traces.
    pub cases: u32,
    /// Accesses per trace.
    pub accesses_per_case: usize,
    /// Registry names to verify.
    pub policies: Vec<String>,
    /// Where to dump shrunk reproducers (`None` keeps them in memory only).
    pub out_dir: Option<PathBuf>,
}

impl FuzzConfig {
    /// The registry's default fuzz set: every table entry with
    /// `meta.fuzz` plus each parameterized family's concrete spellings
    /// ([`registry::fuzz_names`]). A new registry row joins the campaign
    /// automatically.
    pub fn all_policies() -> Vec<String> {
        registry::fuzz_names()
    }

    /// A small fixed-budget campaign suitable for CI smoke runs.
    pub fn smoke(seed: u64) -> Self {
        FuzzConfig {
            seed,
            cases: 2,
            accesses_per_case: 4096,
            policies: Self::all_policies(),
            out_dir: None,
        }
    }
}

/// One verified failure of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Policy that diverged.
    pub policy: String,
    /// Fuzz case index.
    pub case: u32,
    /// Access index of the divergence in the original trace.
    pub index: usize,
    /// What disagreed.
    pub detail: String,
    /// Length of the shrunk reproducer.
    pub reproducer_len: usize,
    /// Artifact path, when an output directory was configured.
    pub artifact: Option<PathBuf>,
}

/// Campaign outcome: access volume replayed and any failures found.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Cases generated.
    pub cases: u32,
    /// Accesses replayed, summed over policies (each through at least two
    /// models).
    pub replayed_accesses: u64,
    /// Divergences and OPT-bound violations, shrunk where applicable.
    pub failures: Vec<CaseFailure>,
}

/// Runs a fuzz campaign; see [`FuzzConfig`].
pub fn run_campaign(cfg: &FuzzConfig) -> CampaignReport {
    let llc = fuzz_llc();
    let mut failures = Vec::new();
    let mut replayed = 0u64;
    for case in 0..cfg.cases {
        let accesses = synth_trace(cfg.seed, case, cfg.accesses_per_case);
        let bound = opt_misses(&llc, &accesses);
        for name in &cfg.policies {
            match differential_replay(&llc, name, &accesses, Fault::None) {
                Ok(stats) => {
                    replayed += accesses.len() as u64;
                    // The Belady bound applies only to mandatory-fill runs:
                    // a bypassing policy skips fills OPT is forced to make.
                    let bypasses = stats.bypassed_reads + stats.bypassed_writes;
                    if bypasses == 0 && stats.total_misses() < bound {
                        failures.push(CaseFailure {
                            policy: name.clone(),
                            case,
                            index: accesses.len(),
                            detail: format!(
                                "OPT bound violated: {} misses < OPT {bound}",
                                stats.total_misses()
                            ),
                            reproducer_len: accesses.len(),
                            artifact: None,
                        });
                    }
                }
                Err(d) => {
                    let repro = shrink(&llc, name, &accesses, Fault::None);
                    let artifact = cfg
                        .out_dir
                        .as_ref()
                        .and_then(|dir| dump_reproducer(dir, name, cfg.seed, case, &repro).ok());
                    failures.push(CaseFailure {
                        policy: name.clone(),
                        case,
                        index: d.index,
                        detail: d.detail,
                        reproducer_len: repro.len(),
                        artifact,
                    });
                }
            }
        }
    }
    CampaignReport { cases: cfg.cases, replayed_accesses: replayed, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_trace_is_deterministic() {
        let a = synth_trace(7, 0, 2000);
        let b = synth_trace(7, 0, 2000);
        assert_eq!(a, b);
        let c = synth_trace(7, 1, 2000);
        assert_ne!(a, c, "different cases draw different traces");
        let d = synth_trace(8, 0, 2000);
        assert_ne!(a, d, "different seeds draw different traces");
    }

    #[test]
    fn traces_mix_streams_and_hit_the_llc() {
        let accesses = synth_trace(11, 3, 6000);
        let streams: std::collections::HashSet<StreamId> =
            accesses.iter().map(|a| a.stream).collect();
        assert!(streams.len() >= 2, "fuzz trace uses a single stream");
        let stats = differential_replay(&fuzz_llc(), "DRRIP", &accesses, Fault::None).unwrap();
        assert!(stats.evictions > 0, "trace never filled a set");
        assert!(stats.total_hits() > 0, "trace has no reuse at all");
    }

    #[test]
    fn clean_replay_agrees_for_a_sample_of_policies() {
        let accesses = synth_trace(3, 0, 4000);
        for name in ["DRRIP", "GSPC+UCD", "SHiP-mem", "OPT", "LRU"] {
            differential_replay(&fuzz_llc(), name, &accesses, Fault::None)
                .unwrap_or_else(|d| panic!("{name} diverged: {} @{}", d.detail, d.index));
        }
    }

    #[test]
    fn injected_mirror_desync_is_caught_and_shrinks() {
        // Loads of one block, twice: corrupting the mirror after the first
        // access makes the second miss in the fast path but hit in the
        // reference model.
        let cfg = fuzz_llc();
        let mut accesses = synth_trace(5, 0, 3000);
        // Ensure the first block recurs later in the trace.
        let first = accesses[0];
        accesses.push(Access::load(first.addr, first.stream));
        let d = differential_replay(&cfg, "DRRIP", &accesses, Fault::MirrorDesyncAfterFirst)
            .expect_err("mirror desync must diverge");
        assert!(d.index > 0);
        let repro = shrink(&cfg, "DRRIP", &accesses, Fault::MirrorDesyncAfterFirst);
        assert!(repro.len() <= 100, "reproducer did not shrink: {} accesses remain", repro.len());
        // The shrunk trace still diverges.
        assert!(differential_replay(&cfg, "DRRIP", &repro, Fault::MirrorDesyncAfterFirst).is_err());
    }

    /// The default campaign roster is the registry's fuzz set, so the
    /// OPT-trained newcomer (and any future row) is fuzzed without this
    /// crate changing.
    #[test]
    fn default_roster_comes_from_the_registry() {
        let names = FuzzConfig::all_policies();
        for expected in ["GOPT", "OPT", "GSPC", "GSPZTC(t=2)", "GSPZTC(t=16)"] {
            assert!(names.contains(&expected.to_string()), "{expected} not in default fuzz set");
        }
        assert_eq!(names.len(), registry::fuzz_names().len());
    }

    /// GOPT under the shrinking fuzzer: clean replay agrees with its
    /// independent oracle (next-use annotations flow through the
    /// differential harness automatically), and an injected mirror desync
    /// is caught and ddmin-shrunk just like for the hand-written policies.
    #[test]
    fn gopt_differential_replay_and_shrink() {
        let cfg = fuzz_llc();
        // A plan-backed case (≢ 2 mod 3): its locality knob makes the first
        // block recur quickly, so the injected desync is observable.
        let mut accesses = synth_trace(9, 3, 3000);
        differential_replay(&cfg, "GOPT", &accesses, Fault::None)
            .unwrap_or_else(|d| panic!("GOPT diverged from its oracle: {} @{}", d.detail, d.index));
        differential_replay(&alt_llc(), "GOPT", &accesses, Fault::None)
            .unwrap_or_else(|d| panic!("GOPT diverged on alt geometry: {} @{}", d.detail, d.index));

        let first = accesses[0];
        accesses.push(Access::load(first.addr, first.stream));
        let d = differential_replay(&cfg, "GOPT", &accesses, Fault::MirrorDesyncAfterFirst)
            .expect_err("mirror desync must diverge under GOPT too");
        assert!(d.index > 0);
        let repro = shrink(&cfg, "GOPT", &accesses, Fault::MirrorDesyncAfterFirst);
        assert!(repro.len() <= 100, "GOPT reproducer did not shrink: {} left", repro.len());
        assert!(differential_replay(&cfg, "GOPT", &repro, Fault::MirrorDesyncAfterFirst).is_err());
    }

    /// Cases `≡ 2 (mod 3)` come from the frame-graph registry: they keep
    /// the `(seed, case, len)` determinism contract, honor the requested
    /// length, and carry the renderer's multi-stream structure.
    #[test]
    fn profile_cases_sample_the_graph_registry() {
        let a = synth_trace(7, 2, 2500);
        let b = synth_trace(7, 2, 2500);
        assert_eq!(a, b, "profile-backed case must be deterministic");
        assert_eq!(a.len(), 2500, "profile-backed case must honor len");
        let c = synth_trace(8, 2, 2500);
        assert_ne!(a, c, "different seeds sample different profile traces");
        let streams: std::collections::HashSet<StreamId> = a.iter().map(|x| x.stream).collect();
        assert!(!streams.is_empty());
    }

    /// Satellite lockdown: a trace drawn from a frame-graph profile case
    /// still supports the full catch-and-shrink loop — clean replay
    /// agrees, an injected mirror desync is caught, and ddmin reduces the
    /// profile trace to a minimal reproducer that still diverges.
    #[test]
    fn profile_trace_mutation_is_caught_and_shrinks() {
        let cfg = fuzz_llc();
        let mut accesses = synth_trace(13, 2, 3000);
        differential_replay(&cfg, "GSPC", &accesses, Fault::None)
            .unwrap_or_else(|d| panic!("clean profile trace diverged: {} @{}", d.detail, d.index));

        let first = accesses[0];
        accesses.push(Access::load(first.addr, first.stream));
        let d = differential_replay(&cfg, "GSPC", &accesses, Fault::MirrorDesyncAfterFirst)
            .expect_err("mirror desync must diverge on a profile trace");
        assert!(d.index > 0);
        let repro = shrink(&cfg, "GSPC", &accesses, Fault::MirrorDesyncAfterFirst);
        assert!(repro.len() <= 100, "profile reproducer did not shrink: {} left", repro.len());
        assert!(differential_replay(&cfg, "GSPC", &repro, Fault::MirrorDesyncAfterFirst).is_err());
    }

    #[test]
    fn campaign_smoke_is_clean() {
        let cfg = FuzzConfig {
            seed: 1,
            cases: 1,
            accesses_per_case: 2048,
            policies: vec!["DRRIP".into(), "GSPC".into(), "NRU+UCD".into()],
            out_dir: None,
        };
        let report = run_campaign(&cfg);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.replayed_accesses, 3 * 2048);
    }
}
