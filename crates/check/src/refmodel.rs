//! The naive reference LLC: a Vec-of-structs cache model with none of the
//! fast path's packed-mirror machinery.
//!
//! [`RefLlc`] drives any [`Policy`] through the exact event order the
//! production [`grcache::Llc`] uses (probe, hit bookkeeping, bypass check,
//! free-way pick, victim/evict, install, fill) but keeps its state in the
//! most obvious possible form: one full block address per way, probed by
//! linear scan. There is no tag folding, no validity bitmask, no probe
//! mirror — so a bug in any of those fast-path structures shows up as a
//! divergence between the two models on the same trace.

use grcache::{AccessInfo, AccessResult, Block, LlcConfig, LlcGeometry, LlcStats, Policy};
use grtrace::{Access, PolicyClass, StreamId};

/// One set of the reference model: the policy-facing [`Block`] array plus
/// the full block address resident in each way.
#[derive(Debug, Clone)]
struct RefSet {
    addrs: Vec<u64>,
    blocks: Vec<Block>,
}

/// Per-stream statistics kept by the reference model, mirroring what
/// [`LlcStats`] counts — re-counted independently so the comparison covers
/// the production stats plumbing too.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefStats {
    /// Hits per stream index ([`StreamId::index`]).
    pub hits: [u64; 9],
    /// Misses per stream index (bypasses included, as in the fast path).
    pub misses: [u64; 9],
    /// Fills per policy class index.
    pub fills: [u64; 4],
    /// Fills whose reported insertion RRPV was the distant value.
    pub distant_fills: [u64; 4],
    /// Read accesses that bypassed the LLC.
    pub bypassed_reads: u64,
    /// Write accesses that bypassed the LLC.
    pub bypassed_writes: u64,
    /// Dirty blocks displaced to memory.
    pub writebacks: u64,
    /// Valid blocks displaced (dirty or clean).
    pub evictions: u64,
}

impl RefStats {
    /// Compares against the production [`LlcStats`], returning the first
    /// mismatching counter as an error message.
    pub fn matches(&self, fast: &LlcStats) -> Result<(), String> {
        for s in StreamId::ALL {
            if self.hits[s.index()] != fast.hits(s) {
                return Err(format!(
                    "{} hits: reference {} vs fast {}",
                    s.label(),
                    self.hits[s.index()],
                    fast.hits(s)
                ));
            }
            if self.misses[s.index()] != fast.misses(s) {
                return Err(format!(
                    "{} misses: reference {} vs fast {}",
                    s.label(),
                    self.misses[s.index()],
                    fast.misses(s)
                ));
            }
        }
        for class in PolicyClass::ALL {
            if self.fills[class.index()] != fast.fills(class) {
                return Err(format!(
                    "{class:?} fills: reference {} vs fast {}",
                    self.fills[class.index()],
                    fast.fills(class)
                ));
            }
            if self.distant_fills[class.index()] != fast.distant_fills(class) {
                return Err(format!(
                    "{class:?} distant fills: reference {} vs fast {}",
                    self.distant_fills[class.index()],
                    fast.distant_fills(class)
                ));
            }
        }
        let pairs = [
            ("bypassed reads", self.bypassed_reads, fast.bypassed_reads),
            ("bypassed writes", self.bypassed_writes, fast.bypassed_writes),
            ("writebacks", self.writebacks, fast.writebacks),
            ("evictions", self.evictions, fast.evictions),
        ];
        for (what, ours, theirs) in pairs {
            if ours != theirs {
                return Err(format!("{what}: reference {ours} vs fast {theirs}"));
            }
        }
        Ok(())
    }
}

/// The reference LLC: same geometry, same policy protocol, naive storage.
#[derive(Debug)]
pub struct RefLlc<P> {
    cfg: LlcConfig,
    geo: LlcGeometry,
    policy: P,
    sets: Vec<RefSet>,
    stats: RefStats,
    seq: u64,
}

impl<P: Policy> RefLlc<P> {
    /// Creates an empty reference cache running `policy`.
    pub fn new(cfg: LlcConfig, policy: P) -> Self {
        let empty = RefSet { addrs: vec![0; cfg.ways], blocks: vec![Block::default(); cfg.ways] };
        RefLlc {
            cfg,
            geo: cfg.geometry(),
            policy,
            sets: vec![empty; cfg.total_sets()],
            stats: RefStats::default(),
            seq: 0,
        }
    }

    /// The accumulated reference statistics.
    pub fn stats(&self) -> &RefStats {
        &self.stats
    }

    /// The policy, for inspection.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Services one access, replicating the production event order:
    /// probe; on a hit record, mark dirty, update next-use, `on_hit`; on a
    /// miss record, consult `should_bypass`, pick the first free way or ask
    /// for a victim (`choose_victim` then `on_evict`), install the block
    /// zeroed, then `on_fill`.
    pub fn access(&mut self, access: &Access, next_use: u64) -> AccessResult {
        let block = access.block();
        let (bank, set_in_bank, _tag) = self.geo.map(block);
        let info = AccessInfo {
            seq: self.seq,
            block,
            bank,
            set_in_bank,
            stream: access.stream,
            class: access.stream.policy_class(),
            write: access.write,
            is_sample: self.cfg.is_sample_set(set_in_bank),
            next_use,
        };
        self.seq += 1;

        let ways = self.cfg.ways;
        let set = &mut self.sets[bank * self.cfg.sets_per_bank() + set_in_bank];

        // Naive probe: linear scan over full block addresses.
        let resident = (0..ways).find(|&w| set.blocks[w].valid && set.addrs[w] == block);
        if let Some(way) = resident {
            self.stats.hits[info.stream.index()] += 1;
            set.blocks[way].dirty |= info.write;
            set.blocks[way].next_use = next_use;
            self.policy.on_hit(&info, &mut set.blocks, way);
            return AccessResult::Hit;
        }

        self.stats.misses[info.stream.index()] += 1;

        if self.policy.should_bypass(&info) {
            if info.write {
                self.stats.bypassed_writes += 1;
            } else {
                self.stats.bypassed_reads += 1;
            }
            return AccessResult::Bypass;
        }

        let mut dirty_eviction = false;
        let way = match (0..ways).find(|&w| !set.blocks[w].valid) {
            Some(free) => free,
            None => {
                let victim = self.policy.choose_victim(&info, &mut set.blocks);
                assert!(victim < ways, "reference victim out of range");
                self.policy.on_evict(&info, &mut set.blocks, victim);
                self.stats.evictions += 1;
                dirty_eviction = set.blocks[victim].dirty;
                if dirty_eviction {
                    self.stats.writebacks += 1;
                }
                victim
            }
        };

        set.blocks[way] = Block { valid: true, dirty: info.write, meta: 0, next_use };
        set.addrs[way] = block;
        let fill = self.policy.on_fill(&info, &mut set.blocks, way);
        self.stats.fills[info.class.index()] += 1;
        if fill.distant {
            self.stats.distant_fills[info.class.index()] += 1;
        }
        AccessResult::Miss { dirty_eviction }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grcache::Llc;
    use grsynth::{AppProfile, Scale};
    use gspc::registry;

    /// The reference model must agree with the production LLC access by
    /// access on a real synthesized frame, for a policy with eviction
    /// training (SHiP exercises `on_evict`) and one with bypasses.
    #[test]
    fn reference_matches_fast_path_on_synthesized_frame() {
        let app = &AppProfile::all()[0];
        let trace = grsynth::generate_frame(app, 0, Scale::Tiny);
        let cfg = LlcConfig { size_bytes: 256 * 1024, ways: 16, banks: 4, sample_period: 64 };
        for name in ["SHiP-mem", "GSPC+UCD", "DRRIP"] {
            let mut fast = Llc::new(cfg, registry::create(name, &cfg).unwrap());
            let mut reference = RefLlc::new(cfg, registry::create(name, &cfg).unwrap());
            for (i, a) in trace.iter().enumerate() {
                let f = fast.access(a);
                let r = reference.access(a, u64::MAX);
                assert_eq!(f, r, "{name} diverged at access {i}");
            }
            reference.stats().matches(fast.stats()).expect(name);
        }
    }
}
