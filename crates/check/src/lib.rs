//! Differential verification of the LLC simulator.
//!
//! Three independent layers, each catching bugs the others cannot:
//!
//! * [`refmodel`] + [`oracle`] — a naive Vec-of-structs reference LLC
//!   ([`refmodel::RefLlc`]) replays every access alongside the production
//!   fast path, driving either a second clone of the registry policy
//!   (catches fast-path structural bugs: mirror desync, probe masks,
//!   victim indexing) or an independently written oracle policy
//!   (catches policy-logic bugs shared by both replays).
//! * [`optcheck`] — an independent Belady simulation giving a miss-count
//!   lower bound no bypass-free online policy may beat.
//! * [`fuzz`] — a deterministic, seeded trace generator plus a shrinking
//!   differential replayer. Divergences are minimized to a handful of
//!   accesses and dumped as `.gtrace` reproducers.
//!
//! [`conform`] closes the loop against the paper itself: it replays real
//! cached frames and asserts figure-level properties (per-stream hit-rate
//! goldens, GSPC-vs-baseline miss ratios, OPT agreement).
//!
//! The `grcheck` binary drives fuzz campaigns (`grcheck fuzz --seed N`),
//! the conformance suite (`grcheck conformance`), and a timed
//! `GR_CHECK`-style invariant sweep (`grcheck invariants`). The fourth
//! layer — structural invariants asserted during replay — lives in
//! `grcache::observe` and switches on with `GR_CHECK=1`.

pub mod conform;
pub mod fuzz;
pub mod optcheck;
pub mod oracle;
pub mod refmodel;
