//! An independent Belady bound: no online policy may ever beat OPT.
//!
//! [`opt_misses`] computes the optimal (mandatory-fill) miss count for a
//! trace with its own backward next-use pass and its own per-set
//! simulation — sharing nothing with [`grcache::annotate_next_use`] or the
//! production `OPT` replay, so it cross-checks both.

use grcache::LlcConfig;
use grtrace::Access;
use std::collections::HashMap;

/// The next-use annotation for each access: the trace index of the next
/// access to the same block, `u64::MAX` if there is none. Computed with a
/// plain backward scan over a hash map (independent of the production
/// optgen pass).
pub fn next_uses(accesses: &[Access]) -> Vec<u64> {
    let mut next_seen: HashMap<u64, u64> = HashMap::new();
    let mut nu = vec![u64::MAX; accesses.len()];
    for (i, a) in accesses.iter().enumerate().rev() {
        let block = a.block();
        if let Some(&n) = next_seen.get(&block) {
            nu[i] = n;
        }
        next_seen.insert(block, i as u64);
    }
    nu
}

/// Misses incurred by Belady's optimal policy (every miss fills; the
/// victim is the resident block with the farthest next use).
///
/// Ties among never-used-again blocks are broken arbitrarily; any
/// farthest-next-use choice achieves the same, optimal, miss count, so the
/// result is comparable with the production `OPT` replay regardless of its
/// tie-break.
pub fn opt_misses(cfg: &LlcConfig, accesses: &[Access]) -> u64 {
    #[derive(Clone)]
    struct Way {
        block: u64,
        next: u64,
    }
    let nu = next_uses(accesses);
    let geo = cfg.geometry();
    let mut sets: Vec<Vec<Way>> = vec![Vec::new(); cfg.total_sets()];
    let mut misses = 0u64;
    for (i, a) in accesses.iter().enumerate() {
        let block = a.block();
        let (bank, set_in_bank, _tag) = geo.map(block);
        let set = &mut sets[geo.set_index(bank, set_in_bank)];
        if let Some(w) = set.iter_mut().find(|w| w.block == block) {
            w.next = nu[i];
            continue;
        }
        misses += 1;
        let way = Way { block, next: nu[i] };
        if set.len() < cfg.ways {
            set.push(way);
        } else {
            let victim = set
                .iter()
                .enumerate()
                .max_by_key(|(_, w)| w.next)
                .map(|(i, _)| i)
                .expect("non-empty full set");
            set[victim] = way;
        }
    }
    misses
}

#[cfg(test)]
mod tests {
    use super::*;
    use grcache::{annotate_next_use, Llc, LlcConfig};
    use grtrace::StreamId;
    use gspc::Belady;

    #[test]
    fn next_uses_matches_production_annotation() {
        let blocks = [0u64, 64, 0, 128, 64, 0];
        let accesses: Vec<Access> =
            blocks.iter().map(|&a| Access::load(a, StreamId::Texture)).collect();
        assert_eq!(next_uses(&accesses), annotate_next_use(&accesses));
        assert_eq!(next_uses(&accesses), vec![2, 4, 5, u64::MAX, u64::MAX, u64::MAX]);
    }

    #[test]
    fn opt_misses_equals_production_opt_replay() {
        // Cyclic thrash over 3 blocks in a 2-way set: OPT keeps the hit
        // rate near 1/2 where recency policies get zero.
        let cfg = LlcConfig { size_bytes: 1024, ways: 2, banks: 4, sample_period: 2 };
        let mut accesses = Vec::new();
        for _ in 0..50 {
            for i in 0..3u64 {
                accesses.push(Access::load(i * 8 * 64, StreamId::Texture));
            }
        }
        let independent = opt_misses(&cfg, &accesses);
        let mut llc = Llc::new(cfg, Belady::new());
        let nu = annotate_next_use(&accesses);
        for (a, &n) in accesses.iter().zip(&nu) {
            llc.access_annotated(a, n);
        }
        assert_eq!(independent, llc.stats().total_misses());
        assert!(independent < accesses.len() as u64);
    }

    #[test]
    fn opt_is_a_lower_bound_for_online_policies() {
        let cfg = LlcConfig { size_bytes: 4096, ways: 4, banks: 2, sample_period: 4 };
        let mut accesses = Vec::new();
        for round in 0..40u64 {
            for i in 0..7u64 {
                accesses.push(Access::load((i * 11 + round) % 32 * 64, StreamId::Z));
            }
        }
        let bound = opt_misses(&cfg, &accesses);
        for name in ["NRU", "LRU", "DRRIP"] {
            let mut llc = Llc::new(cfg, gspc::registry::create(name, &cfg).unwrap());
            for a in &accesses {
                llc.access(a);
            }
            assert!(
                llc.stats().total_misses() >= bound,
                "{name} beat OPT: {} < {bound}",
                llc.stats().total_misses()
            );
        }
    }
}
