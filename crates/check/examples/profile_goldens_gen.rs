//! Regenerates the `PROFILE_GOLDENS` table in `src/conform.rs`.
//!
//! Prints, for every built-in frame-graph profile at the pinned golden
//! configuration (`Scale::Tiny`, frame 0, default coherence, 8 MB-class
//! LLC), the per-stream access counts and the overall DRRIP/GSPC hit
//! rates. Run after any deliberate generator change and copy the numbers
//! into the table:
//!
//! ```text
//! cargo run --release -p grcheck --example profile_goldens_gen
//! ```

use grbench::ExperimentConfig;
use grcache::Llc;
use grsynth::{GraphRenderer, Scale, GRAPH_PROFILES};
use grtrace::StreamId;
use gspc::registry;

fn main() {
    let cfg = ExperimentConfig { scale: Scale::Tiny, frames_per_app: Some(1) };
    let llc = cfg.llc(8);
    for p in GRAPH_PROFILES {
        let trace = GraphRenderer::new(&p.graph(), 0, Scale::Tiny).render();
        print!("{}: ", p.name);
        for s in StreamId::ALL {
            let n = trace.accesses().iter().filter(|a| a.stream == s).count();
            if n > 0 {
                print!("({s:?}, {n}), ");
            }
        }
        for name in ["DRRIP", "GSPC"] {
            let mut l = Llc::new(llc, registry::create(name, &llc).unwrap());
            l.run_source(&mut trace.source()).unwrap();
            let st = l.stats();
            print!("{name} {:.4}  ", st.total_hits() as f64 / st.total_accesses() as f64);
        }
        println!();
    }
}
