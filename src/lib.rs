//! Facade crate for the MICRO 2013 GPU-LLC reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency:
//!
//! * [`trace`] — streams, accesses, traces,
//! * [`synth`] — synthetic DirectX-style workloads,
//! * [`cache`] — render caches and the banked LLC simulator,
//! * [`policies`] — the GSPC family and all baselines,
//! * [`dram`] — the DDR3 timing model,
//! * [`gpu`] — the GPU interval timing model,
//! * [`json`] — the dependency-free JSON codec,
//! * [`serve`] — the simulation-as-a-service daemon layer.

pub use grcache as cache;
pub use grdram as dram;
pub use grgpu as gpu;
pub use grjson as json;
pub use grserve as serve;
pub use grsynth as synth;
pub use grtrace as trace;
pub use gspc as policies;
